//! Expression-level views over the significant token stream.
//!
//! The token-stream rules ([`crate::rules`]) match fixed token patterns;
//! the item tree ([`crate::item_tree`]) gives them structural scoping.
//! The semantic rules added in v3 need one layer more: *expressions* —
//! which identifiers meet in a binary operation, what a call site passes
//! into which parameter, which string literal sits in key position at a
//! metrics sink. This module extracts exactly those shapes, nothing else:
//!
//! * [`fn_sigs`] — every `fn` signature (parameter names, whether the
//!   return type mentions `Result`), brace/paren/angle-matched so default
//!   values, array types, and generic bounds cannot derail it.
//! * [`call_sites`] — `callee(arg, …)` occurrences with each argument
//!   reduced to its sole identifier when it is a bare name or dotted
//!   path (anything more complex is deliberately opaque: a composite
//!   expression is where unit conversions live).
//! * [`bin_ops`] — `lhs ⊕ rhs` where both operands are identifiers and
//!   `⊕` is additive/comparison (multiplicative operators are exempt by
//!   construction: scaling by a constant *is* the unit conversion).
//! * [`sink_strings`] — string literals in tuple-key position
//!   (`("key", …)`) inside a named function, the `export_metrics` shape.
//! * [`struct_fields`] — field names of a named struct, for contract
//!   rules that cross-reference a struct against the rest of the tree.
//!
//! Like the lexer and the item tree, extraction is forgiving: malformed
//! input produces fewer facts, never a panic.

use crate::item_tree::{matching_close, ItemKind, ItemTree};
use crate::lexer::{TokKind, Token};

/// One function parameter: binding name (when the pattern is a plain,
/// possibly `mut`, identifier) and the flattened type text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    /// Binding identifier, `None` for destructuring patterns.
    pub name: Option<String>,
    /// Type tokens joined with single spaces (`Option < u64 >`).
    pub ty: String,
}

/// One harvested `fn` signature.
#[derive(Clone, Debug)]
pub struct FnSig {
    /// Function name.
    pub name: String,
    /// Parameters in order, the `self` receiver (if any) excluded.
    pub params: Vec<Param>,
    /// Whether the return type mentions `Result`.
    pub returns_result: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the fn lives inside a test-only span.
    pub test_only: bool,
}

/// One call argument, reduced to what the rules can reason about.
#[derive(Clone, Debug)]
pub struct Arg {
    /// `Some(last_segment)` when the argument is nothing but an
    /// identifier path (`x`, `self.t_ns`, `&cfg.period_us`); `None` for
    /// any composite expression.
    pub sole_ident: Option<String>,
}

/// One `callee(args…)` occurrence.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The identifier directly before the argument list (for method and
    /// path calls this is the final segment). Turbofish call sites
    /// (`f::<T>(…)`) report the identifier before the `::<…>`.
    pub callee: String,
    /// `true` when invoked as `receiver.callee(…)`.
    pub is_method: bool,
    /// `true` when invoked as exactly `self.callee(…)` (the receiver is
    /// the bare `self`, not a field or a chained expression).
    pub receiver_self: bool,
    /// The path segment qualifying the call, when there is one:
    /// `Foo::bar(…)` → `Foo`, `<T as Trait>::f(…)` → `T`,
    /// `Self::helper(…)` → `Self`. `None` for unqualified and method
    /// calls. Call-graph resolution uses this to narrow candidates to an
    /// impl owner; a qualifier matching nothing narrows nothing.
    pub qualifier: Option<String>,
    /// Arguments in order.
    pub args: Vec<Arg>,
    /// Significant-token index of the callee identifier.
    pub at: usize,
    /// 1-based source position of the callee.
    pub line: u32,
    /// 1-based column of the callee.
    pub col: u32,
}

/// A binary operation between two bare identifier operands.
#[derive(Clone, Debug)]
pub struct BinOp {
    /// The operator's first punctuation byte (`+`, `-`, `<`, `>`, `%`).
    pub op: char,
    /// Last path segment of the left operand.
    pub lhs: String,
    /// Last path segment of the right operand.
    pub rhs: String,
    /// Significant-token index of the operator.
    pub at: usize,
    /// 1-based source line of the operator.
    pub line: u32,
    /// 1-based column of the operator.
    pub col: u32,
}

/// A string literal in tuple-key position inside a named fn.
#[derive(Clone, Debug)]
pub struct SinkStr {
    /// Literal contents (escapes as written).
    pub value: String,
    /// Index of the enclosing fn among same-named fns in the file
    /// (distinguishes `RunResult::export_metrics` from
    /// `ThreadReport::export_metrics` within one file).
    pub owner: usize,
    /// 1-based source line of the literal.
    pub line: u32,
    /// 1-based column of the literal.
    pub col: u32,
}

/// Rust keywords that can directly precede a parenthesis without being a
/// call (`match (a, b)`, `if (…)`, `return (…)`, …).
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "match", "for", "return", "loop", "in", "as", "move", "fn", "impl", "let",
];

/// Harvests every `fn` signature in the tree. `mask` is the test-token
/// mask from [`ItemTree::test_token_mask`]; a fn inside a masked span
/// (its own `#[test]`/`#[cfg(test)]` attribute *or* an enclosing test
/// module) is reported with `test_only = true`.
pub fn fn_sigs(sig: &[&Token], tree: &ItemTree, mask: &[bool]) -> Vec<FnSig> {
    let mut out = Vec::new();
    tree.for_each(&mut |item| {
        if item.kind != ItemKind::Fn {
            return;
        }
        let Some(name) = item.name.clone() else { return };
        // The `fn` keyword: first `fn` token in the span (attributes may
        // precede it).
        let Some(kw) = (item.span.0..item.span.1.min(sig.len()))
            .find(|&k| sig[k].is_ident("fn"))
        else {
            return;
        };
        let header_end = item.body.map_or(item.span.1, |(s, _)| s).min(sig.len());
        let Some(open) = paren_after_generics(sig, kw + 2, header_end) else { return };
        let Some(close) = matching_close(sig, open, '(', ')') else { return };
        let (params, _has_self) = split_params(sig, open + 1, close);
        let ret = &sig[(close + 1).min(header_end)..header_end];
        let returns_result = ret.iter().any(|t| t.is_ident("Result"));
        out.push(FnSig {
            name,
            params,
            returns_result,
            line: sig[kw].line,
            test_only: item.test_only || mask.get(kw).copied().unwrap_or(false),
        });
    });
    out
}

/// First `(` at angle-depth 0 in `sig[from..end]` — skips a generic
/// parameter list (which may itself contain `Fn(…) -> T` bounds).
pub(crate) fn paren_after_generics(sig: &[&Token], from: usize, end: usize) -> Option<usize> {
    let mut angle = 0i64;
    let mut k = from;
    while k < end {
        let t = sig[k];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            // `->` inside a bound is an arrow, not a closing angle.
            let arrow = k > 0 && sig[k - 1].is_punct('-');
            if !arrow && angle > 0 {
                angle -= 1;
            }
        } else if t.is_punct('(') && angle == 0 {
            return Some(k);
        }
        k += 1;
    }
    None
}

/// Splits `sig[start..end]` (the inside of a parameter list) at top-level
/// commas and extracts each parameter. The `self` receiver is dropped
/// from the list; whether one was present is returned alongside.
pub(crate) fn split_params(sig: &[&Token], start: usize, end: usize) -> (Vec<Param>, bool) {
    let mut params = Vec::new();
    let mut has_self = false;
    for (lo, hi) in split_top_level(sig, start, end) {
        let group = &sig[lo..hi];
        if !group.is_empty()
            && group.iter().all(|t| {
                t.is_ident("self") || t.is_ident("mut") || t.is_punct('&') || t.kind == TokKind::Lifetime
            })
        {
            has_self = true;
            continue; // receiver (`self`, `&mut self`, `&'a self`)
        }
        // Binding name: the identifier immediately before the first
        // top-level `:` (not `::`).
        let mut name = None;
        let mut ty = String::new();
        let mut depth = 0i64;
        let mut k = 0;
        while k < group.len() {
            let t = group[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('>') && !(k > 0 && group[k - 1].is_punct('-')) {
                depth -= 1;
            } else if depth == 0
                && t.is_punct(':')
                && group.get(k + 1).is_none_or(|n| !n.is_punct(':'))
                && (k == 0 || !group[k - 1].is_punct(':'))
            {
                if k > 0 && group[k - 1].kind == TokKind::Ident {
                    name = Some(group[k - 1].text.clone());
                }
                ty = group[k + 1..].iter().map(|t| t.text.as_str()).collect::<Vec<_>>().join(" ");
                break;
            }
            k += 1;
        }
        params.push(Param { name, ty });
    }
    (params, has_self)
}

/// Comma-separated top-level groups of `sig[start..end]` as half-open
/// index ranges; empty groups are dropped.
pub(crate) fn split_top_level(sig: &[&Token], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut groups = Vec::new();
    let mut depth = 0i64;
    let mut lo = start;
    let mut k = start;
    while k < end.min(sig.len()) {
        let t = sig[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            if k > lo {
                groups.push((lo, k));
            }
            lo = k + 1;
        }
        k += 1;
    }
    if end.min(sig.len()) > lo {
        groups.push((lo, end.min(sig.len())));
    }
    groups
}

/// Index of the `>` closing the angle group opened at `open_idx`. `->`
/// arrows inside the group (e.g. `::<fn(u64) -> bool>`) do not close it.
fn matching_angle(sig: &[&Token], open_idx: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in sig.iter().enumerate().skip(open_idx) {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(k > 0 && sig[k - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        } else if t.is_punct(';') || t.is_punct('{') {
            return None; // ran off the expression: not a turbofish
        }
    }
    None
}

/// The path segment qualifying the call at `callee_idx`, when the two
/// tokens before it are `::`. `Foo::bar` → `Foo`; `<T as Trait>::f` and
/// `<T>::f` → `T`; `Foo<A>::f` → `Foo`.
fn call_qualifier(sig: &[&Token], callee_idx: usize) -> Option<String> {
    if callee_idx < 3 || !sig[callee_idx - 1].is_punct(':') || !sig[callee_idx - 2].is_punct(':') {
        return None;
    }
    let q = sig[callee_idx - 3];
    if q.kind == TokKind::Ident {
        return Some(q.text.clone());
    }
    if q.is_punct('>') {
        // Scan back to the matching `<`, then name the qualified type:
        // the ident before the `<` when the angles are generic arguments
        // (`Foo<A>::f`), else the first ident inside (`<T as Trait>::f`).
        let mut depth = 0i64;
        let mut m = callee_idx - 3;
        loop {
            if sig[m].is_punct('>') && !(m > 0 && sig[m - 1].is_punct('-')) {
                depth += 1;
            } else if sig[m].is_punct('<') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if m == 0 {
                return None;
            }
            m -= 1;
        }
        if m > 0 && sig[m - 1].kind == TokKind::Ident {
            return Some(sig[m - 1].text.clone());
        }
        // `Type::<args>::method`: the `<` is preceded by `::` preceded by
        // the owning type.
        if m >= 3
            && sig[m - 1].is_punct(':')
            && sig[m - 2].is_punct(':')
            && sig[m - 3].kind == TokKind::Ident
        {
            return Some(sig[m - 3].text.clone());
        }
        return sig[m + 1..callee_idx - 3]
            .iter()
            .find(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone());
    }
    None
}

/// Harvests every call site in the stream. Macro invocations
/// (`name!(…)`), definitions (`fn name(…)`), and keyword-parenthesis
/// pairs are excluded. Turbofish call sites (`f::<T>(…)`, method or
/// free) are recognized: the generic-argument list is skipped and the
/// arguments are read from the parenthesis that follows it.
pub fn call_sites(sig: &[&Token]) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in 0..sig.len() {
        let t = sig[i];
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // The argument list opens either directly after the callee or
        // after a turbofish `::<…>`.
        let open = if sig.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            i + 1
        } else if sig.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && sig.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && sig.get(i + 3).is_some_and(|n| n.is_punct('<'))
        {
            match matching_angle(sig, i + 3) {
                Some(close_angle) if sig.get(close_angle + 1).is_some_and(|n| n.is_punct('(')) => {
                    close_angle + 1
                }
                _ => continue,
            }
        } else {
            continue;
        };
        let prev = i.checked_sub(1).map(|p| sig[p]);
        if prev.is_some_and(|p| p.is_punct('!') || p.is_ident("fn")) {
            continue; // macro or definition
        }
        let Some(close) = matching_close(sig, open, '(', ')') else { continue };
        let args = split_top_level(sig, open + 1, close)
            .into_iter()
            .map(|(lo, hi)| Arg { sole_ident: sole_ident_of(&sig[lo..hi]) })
            .collect();
        let is_method = prev.is_some_and(|p| p.is_punct('.'));
        let receiver_self = is_method
            && i >= 2
            && sig[i - 2].is_ident("self")
            && (i < 3 || !sig[i - 3].is_punct('.'));
        out.push(CallSite {
            callee: t.text.clone(),
            is_method,
            receiver_self,
            qualifier: if is_method { None } else { call_qualifier(sig, i) },
            args,
            at: i,
            line: t.line,
            col: t.col,
        });
    }
    out
}

/// The argument's sole identifier: last segment when every token is part
/// of one identifier path (`x`, `self.t_ns`, `&mut cfg.period_us`,
/// `a::B`). Composite expressions return `None`.
fn sole_ident_of(group: &[&Token]) -> Option<String> {
    if group.is_empty() {
        return None;
    }
    let mut last = None;
    for t in group {
        match t.kind {
            TokKind::Ident => last = Some(t.text.clone()),
            TokKind::Punct if t.is_punct('.') || t.is_punct(':') || t.is_punct('&') => {}
            _ => return None,
        }
    }
    last.filter(|_| group.last().is_some_and(|t| t.kind == TokKind::Ident))
}

/// Additive/comparison operators between two identifier operands.
/// Multiplicative operators (`*`, `/`) never appear — and an operand
/// that is itself scaled by one (`a_us * 1000 + b_ns`) is dropped,
/// because the scaling is the unit conversion the caller looks for.
pub fn bin_ops(sig: &[&Token]) -> Vec<BinOp> {
    let mut out = Vec::new();
    for i in 1..sig.len() {
        let t = sig[i];
        if t.kind != TokKind::Punct {
            continue;
        }
        let op = match t.text.chars().next() {
            Some(c @ ('+' | '-' | '<' | '>' | '%')) => c,
            _ => continue,
        };
        let next = sig.get(i + 1);
        // `->`, `<<`, `>>`, `<-`-style digraphs are not binary ops here.
        if op == '-' && next.is_some_and(|n| n.is_punct('>')) {
            continue;
        }
        if (op == '<' || op == '>')
            && (next.is_some_and(|n| n.is_punct(op)) || sig[i - 1].is_punct(op))
        {
            continue;
        }
        if sig[i - 1].is_punct('-') {
            continue; // second half of `->`
        }
        // Left operand: identifier directly before the operator, not a
        // call result, not scaled by `*`/`/`.
        let lhs_tok = sig[i - 1];
        if lhs_tok.kind != TokKind::Ident {
            continue;
        }
        if i >= 2 && (sig[i - 2].is_punct('*') || sig[i - 2].is_punct('/')) {
            continue;
        }
        // Right operand: skip the `=` of `+=`/`<=`/…, then take an
        // identifier path run.
        let mut j = i + 1;
        if sig.get(j).is_some_and(|n| n.is_punct('=')) {
            j += 1;
        }
        let run_start = j;
        let mut last_ident: Option<&Token> = None;
        while let Some(n) = sig.get(j) {
            if n.kind == TokKind::Ident {
                last_ident = Some(n);
            } else if !n.is_punct('.') {
                break;
            }
            j += 1;
        }
        let Some(rhs_tok) = last_ident else { continue };
        if j == run_start {
            continue;
        }
        // A call, an index, or a scaling after the run makes the right
        // side composite: `b_us.max(x)`, `b_us * 1000`.
        if sig.get(j).is_some_and(|n| {
            n.is_punct('(') || n.is_punct('[') || n.is_punct('*') || n.is_punct('/')
        }) {
            continue;
        }
        // `Vec<PageData>`: a `<` whose identifier run closes with `>` is a
        // generic argument list, not a comparison.
        if op == '<' && sig.get(j).is_some_and(|n| n.is_punct('>')) {
            continue;
        }
        out.push(BinOp {
            op,
            lhs: lhs_tok.text.clone(),
            rhs: rhs_tok.text.clone(),
            at: i,
            line: t.line,
            col: t.col,
        });
    }
    out
}

/// String literals in tuple-key position (`(` Str `,`) inside non-test
/// fns named `fn_name`. `owner` counts same-named fns in file order.
pub fn sink_strings(sig: &[&Token], tree: &ItemTree, mask: &[bool], fn_name: &str) -> Vec<SinkStr> {
    let mut out = Vec::new();
    let mut owner = 0usize;
    tree.for_each(&mut |item| {
        if item.kind != ItemKind::Fn || item.name.as_deref() != Some(fn_name) {
            return;
        }
        let Some((body_start, body_end)) = item.body else { return };
        if item.test_only || mask.get(body_start).copied().unwrap_or(false) {
            return;
        }
        for k in body_start..body_end.min(sig.len()) {
            let t = sig[k];
            if t.kind == TokKind::Str
                && k > 0
                && sig[k - 1].is_punct('(')
                && sig.get(k + 1).is_some_and(|n| n.is_punct(','))
            {
                out.push(SinkStr { value: t.text.clone(), owner, line: t.line, col: t.col });
            }
        }
        owner += 1;
    });
    out
}

/// Field names (with their source lines) of the struct named
/// `struct_name`, in declaration order.
pub fn struct_fields(sig: &[&Token], tree: &ItemTree, struct_name: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    tree.for_each(&mut |item| {
        if item.kind != ItemKind::Other || item.name.as_deref() != Some(struct_name) {
            return;
        }
        // Only struct items (the keyword right before the name).
        let kw = (item.span.0..item.span.1.min(sig.len()))
            .find(|&k| sig[k].is_ident("struct"));
        if kw.is_none() {
            return;
        }
        let Some((body_start, body_end)) = item.body else { return };
        let mut depth = 0i64;
        for k in body_start..body_end.min(sig.len()) {
            let t = sig[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct('>') && !(k > 0 && sig[k - 1].is_punct('-')) {
                depth -= 1;
            } else if depth == 0
                && t.is_punct(':')
                && sig.get(k + 1).is_none_or(|n| !n.is_punct(':'))
                && !(k > 0 && sig[k - 1].is_punct(':'))
                && k > 0
                && sig[k - 1].kind == TokKind::Ident
            {
                out.push((sig[k - 1].text.clone(), sig[k - 1].line));
            }
        }
    });
    out
}

/// Identifier texts inside the span of every (non-test) `impl … Trait
/// for …` block naming `trait_name`.
pub fn idents_in_trait_impl(sig: &[&Token], tree: &ItemTree, trait_name: &str) -> Vec<String> {
    let mut out = Vec::new();
    tree.for_each(&mut |item| {
        if item.kind != ItemKind::Impl || item.test_only {
            return;
        }
        let header_end = item.body.map_or(item.span.1, |(s, _)| s).min(sig.len());
        let header = &sig[item.span.0..header_end];
        if !(header.iter().any(|t| t.is_ident(trait_name)) && header.iter().any(|t| t.is_ident("for")))
        {
            return;
        }
        for k in item.span.0..item.span.1.min(sig.len()) {
            if sig[k].kind == TokKind::Ident {
                out.push(sig[k].text.clone());
            }
        }
    });
    out
}

/// Str-literal contents inside the body of every non-test fn named
/// `fn_name` (any position, not just tuple keys).
pub fn strings_in_fn(sig: &[&Token], tree: &ItemTree, fn_name: &str) -> Vec<String> {
    let mut out = Vec::new();
    tree.for_each(&mut |item| {
        if item.kind != ItemKind::Fn || item.name.as_deref() != Some(fn_name) || item.test_only {
            return;
        }
        let Some((body_start, body_end)) = item.body else { return };
        for k in body_start..body_end.min(sig.len()) {
            if sig[k].kind == TokKind::Str {
                out.push(sig[k].text.clone());
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn prep(src: &str) -> (Vec<Token>, ItemTree) {
        let toks = lex(src);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let tree = ItemTree::parse(&sig);
        (toks, tree)
    }

    fn sigs_of(src: &str) -> Vec<FnSig> {
        let (toks, tree) = prep(src);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let mask = tree.test_token_mask(sig.len());
        fn_sigs(&sig, &tree, &mask)
    }

    #[test]
    fn fn_signature_extraction() {
        let fns = sigs_of("fn record(&mut self, t_ns: u64, warm_us: Option<u64>) -> Result<(), E> {}");
        assert_eq!(fns.len(), 1);
        let f = &fns[0];
        assert_eq!(f.name, "record");
        assert_eq!(
            f.params.iter().map(|p| p.name.as_deref()).collect::<Vec<_>>(),
            vec![Some("t_ns"), Some("warm_us")]
        );
        assert!(f.params[1].ty.contains("Option"));
        assert!(f.returns_result);
    }

    #[test]
    fn generic_bounds_do_not_derail_the_param_list() {
        let fns = sigs_of("fn plan<F: Fn(u64) -> bool>(cold: F, period_us: u64) {}");
        assert_eq!(fns[0].params.len(), 2);
        assert_eq!(fns[0].params[1].name.as_deref(), Some("period_us"));
        assert!(!fns[0].returns_result);
    }

    #[test]
    fn array_defaults_and_patterns() {
        let fns = sigs_of("fn f(buf: [u8; 4], (a, b): (u32, u32)) {}");
        assert_eq!(fns[0].params.len(), 2);
        assert_eq!(fns[0].params[0].name.as_deref(), Some("buf"));
        assert_eq!(fns[0].params[1].name, None, "destructuring has no sole binding");
    }

    #[test]
    fn test_fns_are_marked() {
        let fns = sigs_of("#[cfg(test)]\nmod t { fn helper(x_ns: u64) {} }\nfn lib(y_us: u64) {}");
        let h = fns.iter().find(|f| f.name == "helper").expect("nested fn harvested");
        assert!(h.test_only);
        assert!(!fns.iter().find(|f| f.name == "lib").expect("lib").test_only);
    }

    #[test]
    fn call_site_extraction() {
        let (toks, _) = prep("fn f() { record(t_ns); self.push(a.b_us, x + 1); assert!(g(h)); }");
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let calls = call_sites(&sig);
        let names: Vec<&str> = calls.iter().map(|c| c.callee.as_str()).collect();
        // `assert!` is a macro (excluded); `g(h)` inside it is a call.
        assert_eq!(names, vec!["record", "push", "g"]);
        assert_eq!(calls[0].args[0].sole_ident.as_deref(), Some("t_ns"));
        assert!(calls[1].is_method);
        assert_eq!(calls[1].args[0].sole_ident.as_deref(), Some("b_us"));
        assert_eq!(calls[1].args[1].sole_ident, None, "composite args are opaque");
    }

    #[test]
    fn turbofish_call_sites() {
        let src = "fn f() { parse::<u64>(s); let v = iter.collect::<Vec<_>>(); g::<fn(u64) -> bool>(p); }";
        let (toks, _) = prep(src);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let calls = call_sites(&sig);
        let names: Vec<&str> = calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(names, vec!["parse", "collect", "g"]);
        assert_eq!(calls[0].args[0].sole_ident.as_deref(), Some("s"));
        assert!(calls[1].is_method);
        assert!(calls[1].args.is_empty());
        assert_eq!(calls[2].args[0].sole_ident.as_deref(), Some("p"), "fn-ptr arrow inside turbofish");
    }

    #[test]
    fn qualified_call_sites() {
        let src = "fn f() { Foo::bar(x); <T as Trait>::go(a); Self::helper(); self.submit(io); q.r.send(m); }";
        let (toks, _) = prep(src);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let calls = call_sites(&sig);
        assert_eq!(calls.len(), 5, "{calls:?}");
        assert_eq!(calls[0].qualifier.as_deref(), Some("Foo"));
        assert_eq!((calls[1].callee.as_str(), calls[1].qualifier.as_deref()), ("go", Some("T")));
        assert_eq!(calls[2].qualifier.as_deref(), Some("Self"));
        assert!(calls[3].receiver_self, "bare self receiver");
        assert!(calls[3].qualifier.is_none());
        assert!(calls[4].is_method && !calls[4].receiver_self, "chained receiver is not self");
    }

    #[test]
    fn generic_owner_qualifier() {
        let src = "fn f() { Vec::<u8>::with_capacity(n); Wrapper<T>::make(y); }";
        let (toks, _) = prep(src);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let calls = call_sites(&sig);
        let qv: Vec<(&str, Option<&str>)> =
            calls.iter().map(|c| (c.callee.as_str(), c.qualifier.as_deref())).collect();
        assert_eq!(qv, vec![("with_capacity", Some("Vec")), ("make", Some("Wrapper"))]);
    }

    #[test]
    fn bin_op_extraction_and_scaling_exemption() {
        let (toks, _) = prep("fn f() { let x = a_ns + b_us; let y = a_ns + b_us * 1000; }");
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let ops = bin_ops(&sig);
        // Only the unscaled mix survives.
        let pairs: Vec<(&str, &str)> =
            ops.iter().map(|b| (b.lhs.as_str(), b.rhs.as_str())).collect();
        assert_eq!(pairs, vec![("a_ns", "b_us")]);
    }

    #[test]
    fn bin_op_skips_arrows_generics_and_calls() {
        let src = "fn f(v: Vec<PageData>) -> u64 { g(a_ns - b.c_ms); h_us.max(x); a < b }";
        let (toks, _) = prep(src);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let ops = bin_ops(&sig);
        assert_eq!(ops.len(), 2, "{ops:?}");
        assert_eq!((ops[0].lhs.as_str(), ops[0].rhs.as_str()), ("a_ns", "c_ms"));
        assert_eq!((ops[1].lhs.as_str(), ops[1].rhs.as_str()), ("a", "b"));
    }

    #[test]
    fn sink_string_harvest_per_owner() {
        let src = r#"
            fn export_metrics(&self) -> Vec<(&'static str, f64)> {
                vec![("elapsed_ns", 1.0), ("ops", 2.0)]
            }
            fn export_metrics(&self) -> Vec<(&'static str, f64)> {
                vec![("ops", 3.0)]
            }
            fn other() { let _ = ("not_a_key", 1.0); }
            #[cfg(test)]
            fn export_metrics() { let _ = ("test_key", 0.0); }
        "#;
        let (toks, tree) = prep(src);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let mask = tree.test_token_mask(sig.len());
        let keys = sink_strings(&sig, &tree, &mask, "export_metrics");
        let kv: Vec<(&str, usize)> = keys.iter().map(|k| (k.value.as_str(), k.owner)).collect();
        assert_eq!(kv, vec![("elapsed_ns", 0), ("ops", 0), ("ops", 1)]);
    }

    #[test]
    fn struct_field_extraction() {
        let src = "pub struct JobSpec { pub scenario: Scenario, pub pin: Option<usize>, pub ratio: f64 }\nstruct Other { x: u32 }";
        let (toks, tree) = prep(src);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let fields: Vec<String> =
            struct_fields(&sig, &tree, "JobSpec").into_iter().map(|(n, _)| n).collect();
        assert_eq!(fields, vec!["scenario", "pin", "ratio"]);
    }

    #[test]
    fn trait_impl_ident_harvest() {
        let src = "impl PartialEq for JobSpec { fn eq(&self, o: &JobSpec) -> bool { self.pin == o.pin } }";
        let (toks, tree) = prep(src);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let ids = idents_in_trait_impl(&sig, &tree, "PartialEq");
        assert!(ids.iter().any(|i| i == "pin"));
        assert!(idents_in_trait_impl(&sig, &tree, "Display").is_empty());
    }
}
