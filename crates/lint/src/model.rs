//! The per-crate API model and the workspace-level contract passes.
//!
//! [`ApiModel`] aggregates what the expression layer ([`crate::expr`])
//! extracts per file into workspace-wide lookup tables:
//!
//! * **fn signatures by name** — for `unit-mix` call-boundary checks and
//!   `result-dropped` return-type lookups. Same-name collisions are kept
//!   as a list; rules only act when every signature of that name agrees,
//!   so an ambiguous name can cause a miss but never a false positive.
//! * **the metric-key registry** — every string literal in key position
//!   at an `export_metrics` sink, with its source location. `hwdp lint
//!   --metric-keys` serializes this registry; CI archives it.
//!
//! The workspace passes ([`metric_key_findings`], [`spec_knob_findings`])
//! are pure functions over the model plus doc text, so their positive and
//! negative cases are unit-testable without touching the filesystem.

use std::collections::BTreeMap;

use crate::expr;
use crate::item_tree::ItemTree;
use crate::lexer::{lex, TokKind, Token};
use crate::rules::{FileContext, Finding};

/// One fn signature as the rules see it: parameter binding names (in
/// order, receiver excluded) and Result-ness of the return type.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// Parameter binding names; `None` for destructuring patterns.
    pub params: Vec<Option<String>>,
    /// Whether the return type mentions `Result`.
    pub returns_result: bool,
}

/// One harvested metric key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricKey {
    /// The literal key string.
    pub key: String,
    /// Workspace-relative file of the sink.
    pub file: String,
    /// Index of the sink fn among same-named fns in that file.
    pub owner: usize,
    /// 1-based source line of the literal.
    pub line: u32,
    /// 1-based column of the literal.
    pub col: u32,
}

/// Workspace-wide API model.
#[derive(Clone, Debug, Default)]
pub struct ApiModel {
    /// Non-test fn signatures, keyed by bare fn name.
    pub fns: BTreeMap<String, Vec<FnInfo>>,
    /// Every key literal at an `export_metrics` sink, in file order.
    pub metric_keys: Vec<MetricKey>,
}

impl ApiModel {
    /// Builds the model from `(context, source)` pairs — the same file
    /// set the scanner will visit.
    pub fn build<'a>(files: impl IntoIterator<Item = (&'a FileContext, &'a str)>) -> ApiModel {
        let mut model = ApiModel::default();
        for (ctx, source) in files {
            model.absorb(ctx, source);
        }
        model
    }

    /// Single-file model, for rule tests and standalone scans: call
    /// boundaries within the file still resolve.
    pub fn of_file(ctx: &FileContext, source: &str) -> ApiModel {
        ApiModel::build([(ctx, source)])
    }

    fn absorb(&mut self, ctx: &FileContext, source: &str) {
        let tokens = lex(source);
        let sig: Vec<&Token> = tokens.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let tree = ItemTree::parse(&sig);
        let mask = tree.test_token_mask(sig.len());
        for f in expr::fn_sigs(&sig, &tree, &mask) {
            if f.test_only {
                continue;
            }
            self.fns.entry(f.name).or_default().push(FnInfo {
                params: f.params.into_iter().map(|p| p.name).collect(),
                returns_result: f.returns_result,
            });
        }
        for s in expr::sink_strings(&sig, &tree, &mask, "export_metrics") {
            self.metric_keys.push(MetricKey {
                key: s.value,
                file: ctx.path.clone(),
                owner: s.owner,
                line: s.line,
                col: s.col,
            });
        }
    }

    /// The recognized time-unit suffix of an identifier: `_ns`/`_us`/`_ms`
    /// (or the bare unit name, as in a conversion fn's `ns: u64` param).
    pub fn time_suffix(name: &str) -> Option<&'static str> {
        for s in ["ns", "us", "ms"] {
            if name == s || (name.len() > s.len() + 1 && name.ends_with(s)
                && name.as_bytes()[name.len() - s.len() - 1] == b'_')
            {
                return Some(s);
            }
        }
        None
    }

    /// The unit suffix every same-name signature agrees on for parameter
    /// position `k`, or `None` when unknown/ambiguous/unsuffixed.
    pub fn agreed_param_suffix(&self, callee: &str, k: usize) -> Option<&'static str> {
        let sigs = self.fns.get(callee)?;
        let mut agreed: Option<&'static str> = None;
        for f in sigs {
            let name = f.params.get(k)?.as_deref()?;
            let s = Self::time_suffix(name)?;
            match agreed {
                None => agreed = Some(s),
                Some(a) if a != s => return None,
                Some(_) => {}
            }
        }
        agreed
    }

    /// Whether every known fn named `callee` returns a `Result` (and at
    /// least one is known). Ambiguity disables the check.
    pub fn always_returns_result(&self, callee: &str) -> bool {
        self.fns
            .get(callee)
            .is_some_and(|sigs| !sigs.is_empty() && sigs.iter().all(|f| f.returns_result))
    }
}

// ---------------------------------------------------------------------------
// metric-key workspace pass
// ---------------------------------------------------------------------------

/// Documentation text the metric rules cross-reference, as `(file name,
/// contents)` pairs (README.md and DESIGN.md in practice).
pub type DocSet<'a> = &'a [(&'a str, &'a str)];

/// A key counts as documented when it occurs delimited the way the docs
/// write metric names: preceded by a backtick or `/`, followed by a
/// backtick or `/`. This lets a dynamic family like `thread/<i>/ops`
/// document the bare `ops` key its sink exports.
fn key_documented(docs: DocSet, key: &str) -> bool {
    for (_, text) in docs {
        let mut from = 0;
        while let Some(at) = text[from..].find(key) {
            let start = from + at;
            let end = start + key.len();
            let pre = text[..start].chars().next_back();
            let post = text[end..].chars().next();
            if matches!(pre, Some('`') | Some('/')) && matches!(post, Some('`') | Some('/')) {
                return true;
            }
            from = end;
        }
    }
    false
}

/// Backticked literal keys in markdown *metric tables*: contiguous `|`
/// rows whose header cell mentions "metric". Tokens with placeholder
/// characters (`<`, `{`, `*`) are dynamic families and are skipped.
fn documented_table_keys<'a>(docs: DocSet<'a>) -> Vec<(&'a str, u32, String)> {
    let mut out = Vec::new();
    for (file, text) in docs {
        let mut in_table = false;
        for (lineno, line) in text.lines().enumerate() {
            let trimmed = line.trim_start();
            if !trimmed.starts_with('|') {
                in_table = false;
                continue;
            }
            if !in_table {
                // Candidate header row: starts a metric table only when a
                // whole cell IS the metric column label — prose that merely
                // mentions "metrics" mid-sentence doesn't qualify.
                in_table = trimmed.split('|').any(|cell| {
                    let c = cell.trim().trim_matches('`').trim_matches('*');
                    c.eq_ignore_ascii_case("metric") || c.eq_ignore_ascii_case("metrics")
                });
                continue;
            }
            if trimmed.starts_with("|-") || trimmed.starts_with("| -") {
                continue; // separator row
            }
            let mut rest = trimmed;
            while let Some(open) = rest.find('`') {
                let Some(close) = rest[open + 1..].find('`') else { break };
                let tok = &rest[open + 1..open + 1 + close];
                if !tok.is_empty()
                    && tok.chars().all(|c| {
                        c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '/'
                    })
                {
                    out.push((*file, lineno as u32 + 1, tok.to_string()));
                }
                rest = &rest[open + 1 + close + 1..];
            }
        }
    }
    out
}

/// The three `metric-key-*` rules: duplicates within one sink fn, keys
/// exported but absent from the docs, and metric-table rows documenting
/// keys no sink exports.
pub fn metric_key_findings(model: &ApiModel, docs: DocSet) -> Vec<Finding> {
    let mut out = Vec::new();
    // Duplicates within one (file, owner) sink.
    let mut seen: BTreeMap<(&str, usize, &str), (u32, u32)> = BTreeMap::new();
    for k in &model.metric_keys {
        let id = (k.file.as_str(), k.owner, k.key.as_str());
        if let Some(&(l, c)) = seen.get(&id) {
            out.push(Finding {
                file: k.file.clone(),
                line: k.line,
                col: k.col,
                rule: "metric-key-duplicate",
                message: format!(
                    "metric key \"{}\" already exported by this sink at {}:{}; \
                     later values silently shadow earlier ones in keyed readers",
                    k.key, l, c
                ),
            });
        } else {
            seen.insert(id, (k.line, k.col));
        }
    }
    // Exported but undocumented.
    let mut checked: Vec<&str> = Vec::new();
    for k in &model.metric_keys {
        if checked.contains(&k.key.as_str()) {
            continue;
        }
        checked.push(&k.key);
        if !key_documented(docs, &k.key) {
            out.push(Finding {
                file: k.file.clone(),
                line: k.line,
                col: k.col,
                rule: "metric-key-undocumented",
                message: format!(
                    "metric key \"{}\" is exported but appears in no README/DESIGN metric \
                     documentation (expected `{}` in a metric table or prose)",
                    k.key, k.key
                ),
            });
        }
    }
    // Documented in a metric table but never exported.
    let exported: Vec<&str> = model.metric_keys.iter().map(|k| k.key.as_str()).collect();
    for (file, line, key) in documented_table_keys(docs) {
        let hit = exported.iter().any(|e| {
            *e == key
                // A dynamic family's documented full name may embed a
                // static sink key as its last segment (`thread/<i>/ops`
                // is matched by the undocumented check, not this one),
                // and a documented suffix family like `{key}/stddev` is
                // filtered out by the placeholder rule above. Here only
                // exact matches and slash-suffix matches count.
                || (key.ends_with(*e)
                    && key.as_bytes().get(key.len() - e.len() - 1).copied() == Some(b'/'))
        });
        if !hit {
            out.push(Finding {
                file: file.to_string(),
                line,
                col: 1,
                rule: "metric-key-unexported",
                message: format!(
                    "metric table documents key `{key}` but no export_metrics sink exports it"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// spec-knob-consistency workspace pass
// ---------------------------------------------------------------------------

/// Per-file facts the spec-knob pass needs; see [`spec_knob_findings`].
struct KnobEvidence {
    /// `(field, line)` pairs of the `JobSpec` struct.
    fields: Vec<(String, u32)>,
    /// Path of the file defining `JobSpec`.
    spec_file: String,
    /// Identifiers inside `impl PartialEq for …` blocks of the spec file.
    eq_idents: Vec<String>,
    /// String literals inside the spec file's `to_json` fns.
    json_keys: Vec<String>,
    /// The spec file's comment blocks (consecutive comment lines joined),
    /// so an exemption must name the field and its reason *together*.
    spec_comment_blocks: Vec<String>,
    /// Identifiers and string literals across the `cli` crate.
    cli_text: Vec<String>,
    /// Identifiers inside test-only spans of the spec-defining crate.
    test_idents: Vec<String>,
}

fn collect_knob_evidence<'a>(
    files: impl IntoIterator<Item = (&'a FileContext, &'a str)>,
) -> Option<KnobEvidence> {
    let mut ev = KnobEvidence {
        fields: Vec::new(),
        spec_file: String::new(),
        eq_idents: Vec::new(),
        json_keys: Vec::new(),
        spec_comment_blocks: Vec::new(),
        cli_text: Vec::new(),
        test_idents: Vec::new(),
    };
    let mut spec_crate = String::new();
    let mut per_crate_test_idents: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (ctx, source) in files {
        let is_cli = ctx.crate_name == "cli";
        let might_define = source.contains("struct JobSpec");
        if !is_cli && !might_define && !source.contains("#[cfg(test)]") && !source.contains("#[test]")
        {
            continue;
        }
        let tokens = lex(source);
        let sig: Vec<&Token> = tokens.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let tree = ItemTree::parse(&sig);
        let mask = tree.test_token_mask(sig.len());
        if is_cli {
            for t in &sig {
                if t.kind == TokKind::Ident || t.kind == TokKind::Str {
                    ev.cli_text.push(t.text.clone());
                }
            }
        }
        let fields = expr::struct_fields(&sig, &tree, "JobSpec");
        if !fields.is_empty() {
            ev.fields = fields;
            ev.spec_file = ctx.path.clone();
            spec_crate = ctx.crate_name.clone();
            ev.eq_idents = expr::idents_in_trait_impl(&sig, &tree, "PartialEq");
            ev.json_keys = expr::strings_in_fn(&sig, &tree, "to_json");
            // Group consecutive comment lines into doc blocks.
            let mut last_line = 0u32;
            for t in tokens.iter().filter(|t| t.kind == TokKind::Comment) {
                match ev.spec_comment_blocks.last_mut() {
                    Some(blk) if t.line == last_line + 1 => {
                        blk.push('\n');
                        blk.push_str(&t.text);
                    }
                    _ => ev.spec_comment_blocks.push(t.text.clone()),
                }
                last_line = t.line;
            }
        }
        let crate_tests = per_crate_test_idents.entry(ctx.crate_name.clone()).or_default();
        for (k, t) in sig.iter().enumerate() {
            if t.kind == TokKind::Ident && mask.get(k).copied().unwrap_or(false) {
                crate_tests.push(t.text.clone());
            }
        }
    }
    if ev.fields.is_empty() {
        return None;
    }
    ev.test_idents = per_crate_test_idents.remove(&spec_crate).unwrap_or_default();
    Some(ev)
}

/// The `spec-knob-consistency` rule: every `JobSpec` field must carry the
/// full knob contract — an identity-participation decision (compared in
/// `impl PartialEq`, or explicitly exempted in a comment that names the
/// field and says what is ignored), an artifact-serialization decision
/// (a key in `to_json`, or a comment exemption mentioning the artifact),
/// a CLI exposure in `crates/cli`, a README mention, and coverage by a
/// test in the defining crate.
pub fn spec_knob_findings<'a>(
    files: impl IntoIterator<Item = (&'a FileContext, &'a str)>,
    readme: &str,
) -> Vec<Finding> {
    let Some(ev) = collect_knob_evidence(files) else { return Vec::new() };
    let mut out = Vec::new();
    let comment_exempts = |field: &str, marker: &str| {
        ev.spec_comment_blocks
            .iter()
            .any(|b| b.contains(field) && b.to_ascii_lowercase().contains(marker))
    };
    for (field, line) in &ev.fields {
        let mut missing: Vec<&str> = Vec::new();
        // A field participates in identity directly or through an
        // `effective_*` normalizer (`repeats` → `effective_repeats()`).
        let effective = format!("effective_{field}");
        if !ev.eq_idents.iter().any(|i| i == field || *i == effective)
            && !comment_exempts(field, "ignor")
        {
            missing.push("identity-participation decision (PartialEq or a doc-comment exemption)");
        }
        if !ev.json_keys.iter().any(|k| k == field) && !comment_exempts(field, "artifact") {
            missing.push("to_json artifact key (or a doc-comment exemption)");
        }
        let hyph = field.replace('_', "-");
        if !ev.cli_text.iter().any(|t| t == field || t.contains(&hyph)) {
            missing.push("CLI exposure in crates/cli");
        }
        if !readme.contains(field.as_str()) {
            missing.push("README mention");
        }
        if !ev.test_idents.iter().any(|i| i == field) {
            missing.push("test coverage in the defining crate");
        }
        for m in missing {
            out.push(Finding {
                file: ev.spec_file.clone(),
                line: *line,
                col: 1,
                rule: "spec-knob-consistency",
                message: format!("JobSpec knob `{field}` is missing its {m}"),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(crate_name: &str, path: &str) -> FileContext {
        FileContext { crate_name: crate_name.into(), is_bin: false, path: path.into() }
    }

    #[test]
    fn model_collects_fns_and_keys() {
        let c = ctx("core", "crates/core/src/metrics.rs");
        let src = r#"
            fn record(t_ns: u64) -> Result<(), E> { Ok(()) }
            fn record(t_ns: u64) {}
            pub fn export_metrics(&self) -> Vec<(&'static str, f64)> {
                vec![("elapsed_ns", 1.0)]
            }
            #[cfg(test)]
            mod t { fn record(other: u32) {} }
        "#;
        let m = ApiModel::of_file(&c, src);
        assert_eq!(m.fns["record"].len(), 2, "test fns excluded");
        assert!(!m.always_returns_result("record"), "mixed Result-ness disables the check");
        assert_eq!(m.agreed_param_suffix("record", 0), Some("ns"));
        assert_eq!(m.metric_keys.len(), 1);
        assert_eq!(m.metric_keys[0].key, "elapsed_ns");
    }

    #[test]
    fn time_suffix_is_strict() {
        assert_eq!(ApiModel::time_suffix("elapsed_ns"), Some("ns"));
        assert_eq!(ApiModel::time_suffix("warm_us"), Some("us"));
        assert_eq!(ApiModel::time_suffix("wall_ms"), Some("ms"));
        assert_eq!(ApiModel::time_suffix("ns"), Some("ns"));
        assert_eq!(ApiModel::time_suffix("kpted_scans"), None, "no underscore boundary");
        assert_eq!(ApiModel::time_suffix("params"), None);
        assert_eq!(ApiModel::time_suffix("terms"), None);
    }

    fn model_with_keys(keys: &[(&str, usize)]) -> ApiModel {
        let mut m = ApiModel::default();
        for (i, (k, owner)) in keys.iter().enumerate() {
            m.metric_keys.push(MetricKey {
                key: (*k).into(),
                file: "crates/core/src/metrics.rs".into(),
                owner: *owner,
                line: i as u32 + 1,
                col: 1,
            });
        }
        m
    }

    #[test]
    fn duplicate_keys_flagged_per_sink_only() {
        let m = model_with_keys(&[("ops", 0), ("ops", 1), ("ops", 0)]);
        let docs = [("README.md", "the `ops` metric")];
        let f = metric_key_findings(&m, &docs);
        let dups: Vec<&Finding> =
            f.iter().filter(|f| f.rule == "metric-key-duplicate").collect();
        assert_eq!(dups.len(), 1, "same key in two different sinks is fine: {f:?}");
        assert_eq!(dups[0].line, 3);
    }

    #[test]
    fn undocumented_and_dynamic_family_matching() {
        let m = model_with_keys(&[("hw_context", 0), ("mystery", 0)]);
        let docs = [("README.md", "thread metrics like `thread/<i>/hw_context` exist")];
        let f = metric_key_findings(&m, &docs);
        let undoc: Vec<&str> = f
            .iter()
            .filter(|f| f.rule == "metric-key-undocumented")
            .map(|f| f.message.as_str())
            .collect();
        assert_eq!(undoc.len(), 1, "{f:?}");
        assert!(undoc[0].contains("mystery"));
    }

    #[test]
    fn unexported_table_rows_flagged_placeholders_skipped() {
        let m = model_with_keys(&[("tier/promotions", 0)]);
        let docs = [(
            "README.md",
            "| metric | meaning |\n\
             |--------|---------|\n\
             | `tier/promotions` | slow→fast copies |\n\
             | `tier/ghost_key` | never exported |\n\
             | `thread/<i>/ops` | dynamic, skipped |\n\
             \n\
             Outside tables, `other_key` prose is not checked.",
        )];
        let f = metric_key_findings(&m, &docs);
        let unexp: Vec<&Finding> =
            f.iter().filter(|f| f.rule == "metric-key-unexported").collect();
        assert_eq!(unexp.len(), 1, "{f:?}");
        assert!(unexp[0].message.contains("tier/ghost_key"));
        assert_eq!(unexp[0].line, 4);
    }

    const SPEC_OK: &str = r#"
        /// Equality ignores [`JobSpec::sanitize`]: observation-only, and
        /// excluded from the JSON artifact.
        pub struct JobSpec {
            pub pin: Option<usize>,
            pub sanitize: SanitizeLevel,
        }
        impl PartialEq for JobSpec {
            fn eq(&self, o: &JobSpec) -> bool { self.pin == o.pin }
        }
        impl JobSpec {
            pub fn to_json(&self) -> Json { Json::obj([("pin", Json::Null)]) }
        }
        #[cfg(test)]
        mod tests { fn t() { let s = JobSpec { pin: None, sanitize: x }; } }
    "#;

    #[test]
    fn spec_knob_contract_satisfied() {
        let spec = ctx("harness", "crates/harness/src/spec.rs");
        let cli = ctx("cli", "crates/cli/src/main.rs");
        let cli_src = r#"fn run() { j.pin = None; let _ = "--sanitize"; }"#;
        let f = spec_knob_findings(
            [(&spec, SPEC_OK), (&cli, cli_src)],
            "README documents `pin` and the sanitize level",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn spec_knob_contract_violations_fire_per_facet() {
        let spec = ctx("harness", "crates/harness/src/spec.rs");
        let src = r#"
            pub struct JobSpec { pub ghost_knob: u64 }
            impl PartialEq for JobSpec { fn eq(&self, o: &JobSpec) -> bool { true } }
        "#;
        let cli = ctx("cli", "crates/cli/src/main.rs");
        let f = spec_knob_findings([(&spec, src), (&cli, "fn run() {}")], "README");
        let msgs: Vec<&str> = f.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(f.len(), 5, "{msgs:?}");
        assert!(f.iter().all(|f| f.rule == "spec-knob-consistency"));
        assert!(msgs.iter().all(|m| m.contains("ghost_knob")));
    }
}
