//! Layer 4: the workspace call graph and its reachability rules.
//!
//! The per-crate scoping in [`crate::rules`] answers "is this file on the
//! sim path?" by *location*. This module answers the sharper question the
//! determinism contract actually poses: "can the event loop *reach* this
//! function?" — by resolving every call site in the workspace to its
//! candidate definitions and walking the transitive closure.
//!
//! Resolution is deliberately over-approximate, in the gallium-arsenide
//! tradition of whole-program lints that must never miss:
//!
//! * a call resolves to every workspace `fn` with the **same name and a
//!   compatible arity** (method calls require a `self` receiver; path
//!   calls accept the UFCS `Type::method(self, …)` spelling);
//! * an explicit qualifier (`Foo::bar(…)`, `<T as Trait>::f(…)`,
//!   `Self::helper(…)`) or a bare-`self` receiver narrows candidates to
//!   the matching `impl` owner — but a qualifier matching *no* candidate
//!   owner narrows nothing, so trait-object dispatch and cross-crate
//!   same-name functions stay conservatively connected. Two exceptions:
//!   a qualifier naming a known standard-library container or primitive
//!   ([`is_std_qualifier`]) resolves to std by definition — Rust forbids
//!   inherent impls on foreign types — and a qualifier naming a type the
//!   workspace declares, but whose impl surface lacks the called fn,
//!   targets a `derive`d/blanket trait method. Both get *zero* workspace
//!   candidates instead of fanning `Vec::new(…)` out to every workspace
//!   `fn new` and poisoning reachability;
//! * closures are not items: their calls and sinks belong to the
//!   innermost enclosing `fn`, so reachability flows through them;
//! * `#[cfg(test)]`/`#[test]` functions are excluded as nodes and as
//!   call sources (test-mask aware).
//!
//! Recursion is handled by collapsing strongly connected components
//! (iterative Tarjan) and propagating reachability over the condensation,
//! so cycles can never hang the walk or double-count.
//!
//! Three named root sets drive the rule families built on top:
//!
//! * **event-loop roots** — `run`/`step` in `crates/core`, the
//!   `System::run` event loop that replays campaigns byte-identically;
//! * **completion-path roots** — every `finish_*` function plus the
//!   completion entry points in [`COMPLETION_ROOT_NAMES`], the paths that
//!   retire or recover an I/O and must never abort a campaign;
//! * **public-API roots** — `pub fn`s of the sim-path crates, recorded in
//!   the exported graph for downstream audits.

use std::collections::{BTreeMap, BTreeSet};

use crate::expr;
use crate::item_tree::{matching_close, Item, ItemKind, ItemTree};
use crate::lexer::{lex, TokKind, Token};
use crate::rules::{FileContext, Finding, SIM_PATH_CRATES};

/// Completion-path entry points that are not `finish_*`-named: the
/// dispatchers and recovery arms a device completion (or its timeout)
/// fires into. Kept in one place so DESIGN.md and the roster test quote
/// the same list.
pub const COMPLETION_ROOT_NAMES: [&str; 7] = [
    "handle_io_done",
    "handle_completion",
    "osdp_fault_complete",
    "osdp_fault_abort",
    "submit_or_defer",
    "drain_deferred",
    "handle_controller_failure",
];

/// Event-loop root names, matched in the crate named by
/// [`EVENT_ROOT_CRATE`] only.
pub const EVENT_ROOT_NAMES: [&str; 2] = ["run", "step"];

/// The crate owning the event loop.
pub const EVENT_ROOT_CRATE: &str = "core";

/// What kind of nondeterministic / policy-relevant operation a sink is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkKind {
    /// `Instant` / `SystemTime`: host wall clock.
    WallClock,
    /// `std::thread` / `thread::spawn|sleep|scope`.
    ThreadSpawn,
    /// `HashMap` / `HashSet`: randomized iteration order.
    HashOrder,
    /// `{:p}` pointer formatting: ASLR-dependent output.
    PtrFormat,
    /// `.unwrap()` / `.expect()` / `panic!` / `unreachable!` /
    /// `todo!` / `unimplemented!`.
    PanicPath,
    /// Heap allocation or copy: container constructors, `vec!`,
    /// `format!`, `.clone()`, `.to_string()`, `.to_vec()`,
    /// `.to_owned()`, `.collect()`.
    Alloc,
    /// A narrowing `as` cast on a unit-suffixed operand
    /// (`_ns`/`_us`/`_ms`/cycle/LBA).
    CastTruncation,
}

impl SinkKind {
    /// Stable label used in the exported JSON.
    pub fn label(self) -> &'static str {
        match self {
            SinkKind::WallClock => "wall-clock",
            SinkKind::ThreadSpawn => "thread-spawn",
            SinkKind::HashOrder => "hash-order",
            SinkKind::PtrFormat => "ptr-format",
            SinkKind::PanicPath => "panic-path",
            SinkKind::Alloc => "alloc",
            SinkKind::CastTruncation => "cast-truncation",
        }
    }
}

/// One sink occurrence inside a function body.
#[derive(Clone, Debug)]
pub struct Sink {
    /// Classification.
    pub kind: SinkKind,
    /// What was matched, for diagnostics (`HashMap`, `.unwrap()`, …).
    pub what: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// One call out of a function body, reduced to what resolution needs.
#[derive(Clone, Debug)]
pub struct Call {
    /// Callee name (final path segment).
    pub name: String,
    /// Number of arguments at the call site.
    pub argc: usize,
    /// `receiver.name(…)` form.
    pub is_method: bool,
    /// Exactly `self.name(…)`.
    pub receiver_self: bool,
    /// `Foo::name(…)` → `Foo`; `<T as Trait>::name(…)` → `T`.
    pub qualifier: Option<String>,
    /// 1-based source line of the call.
    pub line: u32,
}

/// One function definition: a node of the graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Short crate name (`core`, `harness`, …).
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Function name.
    pub name: String,
    /// Enclosing `impl` self-type's final path segment, when the fn is a
    /// method or associated fn.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared `pub` (any restriction level counts).
    pub is_pub: bool,
    /// Takes a `self` receiver.
    pub has_self: bool,
    /// Parameter count, `self` excluded.
    pub arity: usize,
    /// Outgoing call sites, in source order.
    pub calls: Vec<Call>,
    /// Sinks in the body, in source order.
    pub sinks: Vec<Sink>,
}

impl FnNode {
    /// `Owner::name` for methods, bare `name` otherwise.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The resolved workspace call graph.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Every non-test `fn` in the workspace, files in sorted-path order,
    /// fns in source order within a file.
    pub nodes: Vec<FnNode>,
    /// Adjacency: `edges[v]` is the sorted, deduplicated list of callee
    /// node ids the calls of `v` resolve to.
    pub edges: Vec<Vec<usize>>,
    /// Strongly connected component id per node (Tarjan).
    pub scc_of: Vec<usize>,
    /// Number of SCCs.
    pub scc_count: usize,
    /// Event-loop root node ids.
    pub event_roots: Vec<usize>,
    /// Completion-path root node ids.
    pub completion_roots: Vec<usize>,
    /// Public-API root node ids (pub fns of sim-path crates).
    pub public_roots: Vec<usize>,
    /// Per node: transitively reachable from an event-loop root.
    pub reach_event: Vec<bool>,
    /// Per node: transitively reachable from a completion-path root.
    pub reach_completion: Vec<bool>,
}

impl CallGraph {
    /// Node id of the unique function matching `qname` (`Owner::name` or
    /// bare `name`); `None` when absent or ambiguous-by-bare-name is
    /// acceptable (first match wins for bare names).
    pub fn find(&self, qname: &str) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| n.qualified() == qname || (!qname.contains(':') && n.name == qname))
    }
}

/// Builds the call graph from `(context, source)` pairs. Pass files in
/// sorted-path order for deterministic node ids (the workspace driver
/// does; see `collect_sources`).
pub fn build<'a>(files: impl Iterator<Item = (&'a FileContext, &'a str)>) -> CallGraph {
    let mut nodes: Vec<FnNode> = Vec::new();
    let mut types: BTreeSet<String> = BTreeSet::new();
    for (ctx, source) in files {
        collect_file(ctx, source, &mut nodes, &mut types);
    }

    // Name index for resolution.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, n) in nodes.iter().enumerate() {
        by_name.entry(n.name.as_str()).or_default().push(id);
    }

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for v in 0..nodes.len() {
        let mut outgoing = BTreeSet::new();
        for call in &nodes[v].calls {
            let Some(cands) = by_name.get(call.name.as_str()) else { continue };
            let matched: Vec<usize> =
                cands.iter().copied().filter(|&w| arity_matches(&nodes[w], call)).collect();
            for w in narrow_candidates(&nodes, &types, v, call, matched) {
                outgoing.insert(w);
            }
        }
        edges[v] = outgoing.into_iter().collect();
    }

    let (scc_of, scc_count) = tarjan_sccs(nodes.len(), &edges);

    let event_roots: Vec<usize> = (0..nodes.len())
        .filter(|&i| {
            nodes[i].crate_name == EVENT_ROOT_CRATE
                && EVENT_ROOT_NAMES.contains(&nodes[i].name.as_str())
        })
        .collect();
    let completion_roots: Vec<usize> = (0..nodes.len())
        .filter(|&i| {
            SIM_PATH_CRATES.contains(&nodes[i].crate_name.as_str())
                && (nodes[i].name.starts_with("finish_")
                    || COMPLETION_ROOT_NAMES.contains(&nodes[i].name.as_str()))
        })
        .collect();
    let public_roots: Vec<usize> = (0..nodes.len())
        .filter(|&i| nodes[i].is_pub && SIM_PATH_CRATES.contains(&nodes[i].crate_name.as_str()))
        .collect();

    // Condensation adjacency, shared by both reachability walks.
    let mut scc_adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); scc_count];
    for (v, outs) in edges.iter().enumerate() {
        for &w in outs {
            if scc_of[v] != scc_of[w] {
                scc_adj[scc_of[v]].insert(scc_of[w]);
            }
        }
    }
    let reach_event = reach_over_sccs(&event_roots, &scc_of, scc_count, &scc_adj, nodes.len());
    let reach_completion =
        reach_over_sccs(&completion_roots, &scc_of, scc_count, &scc_adj, nodes.len());

    CallGraph {
        nodes,
        edges,
        scc_of,
        scc_count,
        event_roots,
        completion_roots,
        public_roots,
        reach_event,
        reach_completion,
    }
}

/// The four reachability rule families, as findings over `g`. Inline
/// allows are applied by the workspace driver, which owns the per-file
/// directive positions.
pub fn findings(g: &CallGraph) -> Vec<Finding> {
    let mut out = Vec::new();
    for (id, node) in g.nodes.iter().enumerate() {
        for sink in &node.sinks {
            let (rule, message): (&'static str, String) = match sink.kind {
                SinkKind::WallClock | SinkKind::ThreadSpawn | SinkKind::HashOrder
                | SinkKind::PtrFormat => {
                    if !g.reach_event[id] {
                        continue;
                    }
                    (
                        "det-reachability",
                        format!(
                            "nondeterministic sink `{}` in `{}`, which the event loop reaches; \
                             campaigns replay byte-identically only without it",
                            sink.what,
                            node.qualified()
                        ),
                    )
                }
                SinkKind::PanicPath => {
                    if !g.reach_completion[id] {
                        continue;
                    }
                    (
                        "panic-reachability",
                        format!(
                            "panic path `{}` in `{}`, reachable from the completion roots; \
                             completion handling must degrade to typed errors, not abort",
                            sink.what,
                            node.qualified()
                        ),
                    )
                }
                SinkKind::Alloc => {
                    if !g.reach_event[id] {
                        continue;
                    }
                    (
                        "hot-path-alloc",
                        format!(
                            "allocation `{}` in `{}` on the event-loop hot path \
                             (ratcheted census for the raw-speed work-list)",
                            sink.what,
                            node.qualified()
                        ),
                    )
                }
                SinkKind::CastTruncation => {
                    if !g.reach_event[id] {
                        continue;
                    }
                    (
                        "cast-truncation",
                        format!(
                            "narrowing cast `{}` in `{}` on the reachable sim path \
                             can silently truncate a time/LBA value",
                            sink.what,
                            node.qualified()
                        ),
                    )
                }
            };
            out.push(Finding {
                file: node.file.clone(),
                line: sink.line,
                col: sink.col,
                rule,
                message,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Per-file collection
// ---------------------------------------------------------------------------

fn collect_file(
    ctx: &FileContext,
    source: &str,
    nodes: &mut Vec<FnNode>,
    types: &mut BTreeSet<String>,
) {
    let toks = lex(source);
    let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
    let tree = ItemTree::parse(&sig);
    let mask = tree.test_token_mask(sig.len());
    // Record every concrete type the workspace declares (production code
    // only — a test-local type must not narrow production resolution).
    // Trait names are deliberately excluded: a trait-qualified UFCS call
    // legitimately lands on impl fns owned by the implementing types.
    for (i, w) in sig.windows(2).enumerate() {
        if w[0].kind == TokKind::Ident
            && matches!(w[0].text.as_str(), "struct" | "enum" | "union")
            && w[1].kind == TokKind::Ident
            && !mask.get(i).copied().unwrap_or(false)
        {
            types.insert(w[1].text.clone());
        }
    }
    // owner_of[i]: node id whose body significant token i belongs to.
    // Children overwrite parents, so closures (not items) stay with the
    // innermost fn while nested fns claim their own tokens.
    let mut owner_of: Vec<Option<usize>> = vec![None; sig.len()];
    collect_items(ctx, &sig, &mask, &tree.items, None, nodes, &mut owner_of);

    for c in expr::call_sites(&sig) {
        let Some(&Some(id)) = owner_of.get(c.at) else { continue };
        nodes[id].calls.push(Call {
            name: c.callee,
            argc: c.args.len(),
            is_method: c.is_method,
            receiver_self: c.receiver_self,
            qualifier: c.qualifier,
            line: c.line,
        });
    }
    collect_sinks(&sig, &owner_of, nodes);
}

fn collect_items(
    ctx: &FileContext,
    sig: &[&Token],
    mask: &[bool],
    items: &[Item],
    impl_owner: Option<&str>,
    nodes: &mut Vec<FnNode>,
    owner_of: &mut [Option<usize>],
) {
    for item in items {
        let masked = item.test_only
            || mask.get(item.span.0).copied().unwrap_or(false);
        if masked {
            // A test-only item nested inside a library fn body must not
            // attribute its tokens to the enclosing node.
            for slot in owner_of
                .iter_mut()
                .take(item.span.1.min(sig.len()))
                .skip(item.span.0)
            {
                *slot = None;
            }
            continue;
        }
        match item.kind {
            ItemKind::Impl => {
                let owner = impl_self_type(sig, item);
                collect_items(ctx, sig, mask, &item.children, owner.as_deref(), nodes, owner_of);
            }
            ItemKind::Fn => {
                if let Some(name) = &item.name {
                    let id = nodes.len();
                    nodes.push(fn_node(ctx, sig, item, name, impl_owner));
                    if let Some((bs, be)) = item.body {
                        for slot in owner_of.iter_mut().take(be.min(sig.len())).skip(bs) {
                            *slot = Some(id);
                        }
                    }
                }
                collect_items(ctx, sig, mask, &item.children, None, nodes, owner_of);
            }
            _ => collect_items(ctx, sig, mask, &item.children, impl_owner, nodes, owner_of),
        }
    }
}

fn fn_node(
    ctx: &FileContext,
    sig: &[&Token],
    item: &Item,
    name: &str,
    impl_owner: Option<&str>,
) -> FnNode {
    let span_end = item.span.1.min(sig.len());
    let kw = (item.span.0..span_end).find(|&k| sig[k].is_ident("fn")).unwrap_or(item.span.0);
    let header_end = item.body.map_or(item.span.1, |(s, _)| s).min(sig.len());
    // Visibility precedes the `fn` keyword but may sit *outside* the item
    // span (the span starts at the first attribute, or at `fn` itself
    // when there is none): scan back over the qualifier run.
    let mut is_pub = false;
    let mut k = kw;
    while k > 0 && kw - k < 8 {
        let t = sig[k - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_ident("pub") {
            is_pub = true;
            break;
        }
        k -= 1;
    }
    let (arity, has_self) = expr::paren_after_generics(sig, kw + 2, header_end)
        .and_then(|open| matching_close(sig, open, '(', ')').map(|close| (open, close)))
        .map_or((0, false), |(open, close)| {
            let (params, hs) = expr::split_params(sig, open + 1, close);
            (params.len(), hs)
        });
    FnNode {
        crate_name: ctx.crate_name.clone(),
        file: ctx.path.clone(),
        name: name.to_string(),
        owner: impl_owner.map(str::to_string),
        line: sig.get(kw).map_or(0, |t| t.line),
        is_pub,
        has_self,
        arity,
        calls: Vec::new(),
        sinks: Vec::new(),
    }
}

/// Final path segment of an `impl` block's self type: `impl Foo` → `Foo`,
/// `impl<T> Trait for Foo<T>` → `Foo`, `impl a::B` → `B`.
fn impl_self_type(sig: &[&Token], item: &Item) -> Option<String> {
    let header_end = item.body.map_or(item.span.1, |(s, _)| s).min(sig.len());
    let kw = (item.span.0..header_end).find(|&k| sig[k].is_ident("impl"))?;
    let mut start = kw + 1;
    // Skip the generic parameter list directly after `impl`.
    if sig.get(start).is_some_and(|t| t.is_punct('<')) {
        start = angle_close(sig, start, header_end)? + 1;
    }
    // A top-level `for` separates trait from self type.
    let mut angle = 0i64;
    let mut ty_start = start;
    for k in start..header_end {
        let t = sig[k];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(k > 0 && sig[k - 1].is_punct('-')) {
            angle -= 1;
        } else if angle == 0 && t.is_ident("for") {
            ty_start = k + 1;
            break;
        }
    }
    // Last depth-0 path-segment ident before `where` / body.
    let mut angle = 0i64;
    let mut owner = None;
    for k in ty_start..header_end {
        let t = sig[k];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(k > 0 && sig[k - 1].is_punct('-')) {
            angle -= 1;
        } else if angle == 0 {
            if t.is_ident("where") {
                break;
            }
            if t.kind == TokKind::Ident && !t.is_ident("dyn") && !t.is_ident("mut") {
                owner = Some(t.text.clone());
            }
        }
    }
    owner
}

/// Index of the `>` closing the `<` at `open`, scanning to `end`.
fn angle_close(sig: &[&Token], open: usize, end: usize) -> Option<usize> {
    let mut depth = 0i64;
    for k in open..end.min(sig.len()) {
        let t = sig[k];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(k > 0 && sig[k - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Container types whose associated constructors count as allocation
/// sites for the hot-path census.
const ALLOC_OWNERS: [&str; 8] =
    ["Box", "Vec", "String", "VecDeque", "BTreeMap", "BTreeSet", "Rc", "Arc"];
/// Their constructor names.
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];
/// Allocating (or copying) method names.
const ALLOC_METHODS: [&str; 5] = ["clone", "to_string", "to_vec", "to_owned", "collect"];
/// Narrow integer types a suffixed operand must not be `as`-cast into.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Whether `name` carries a unit the cast-truncation rule protects:
/// `_ns`/`_us`/`_ms` time suffixes, cycle counters, LBAs.
fn truncatable_operand(name: &str) -> bool {
    for suffix in ["ns", "us", "ms", "cycles", "cycle", "lba"] {
        if name == suffix {
            return true;
        }
        if name.len() > suffix.len() + 1 && name.ends_with(suffix) {
            let boundary = name.as_bytes()[name.len() - suffix.len() - 1];
            if boundary == b'_' {
                return true;
            }
        }
    }
    false
}

fn collect_sinks(sig: &[&Token], owner_of: &[Option<usize>], nodes: &mut [FnNode]) {
    for i in 0..sig.len() {
        let Some(&Some(id)) = owner_of.get(i) else { continue };
        let t = sig[i];
        let prev = i.checked_sub(1).map(|p| sig[p]);
        let next = sig.get(i + 1);
        let next2 = sig.get(i + 2);
        let push = |nodes: &mut [FnNode], kind: SinkKind, what: String| {
            nodes[id].sinks.push(Sink { kind, what, line: t.line, col: t.col });
        };
        if t.kind == TokKind::Str {
            if t.text.contains(":p}") {
                push(nodes, SinkKind::PtrFormat, "{:p}".into());
            }
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        let after_dot = prev.is_some_and(|p| p.is_punct('.'));
        // `(` directly after, or after a `::<…>` turbofish.
        let opens_args = next.is_some_and(|n| n.is_punct('('))
            || (next.is_some_and(|n| n.is_punct(':')) && next2.is_some_and(|n| n.is_punct(':')));
        match t.text.as_str() {
            "HashMap" | "HashSet" => push(nodes, SinkKind::HashOrder, t.text.clone()),
            "Instant" | "SystemTime" => push(nodes, SinkKind::WallClock, t.text.clone()),
            "std" => {
                if next.is_some_and(|n| n.is_punct(':'))
                    && next2.is_some_and(|n| n.is_punct(':'))
                    && sig.get(i + 3).is_some_and(|n| n.is_ident("thread"))
                {
                    push(nodes, SinkKind::ThreadSpawn, "std::thread".into());
                }
            }
            "thread" => {
                if next.is_some_and(|n| n.is_punct(':'))
                    && next2.is_some_and(|n| n.is_punct(':'))
                    && sig.get(i + 3).is_some_and(|n| {
                        n.is_ident("spawn") || n.is_ident("sleep") || n.is_ident("scope")
                    })
                    && !prev.is_some_and(|p| p.is_punct(':') || p.is_punct('.'))
                {
                    push(nodes, SinkKind::ThreadSpawn, "thread::spawn".into());
                }
            }
            "unwrap" | "expect" => {
                if after_dot && next.is_some_and(|n| n.is_punct('(')) {
                    push(nodes, SinkKind::PanicPath, format!(".{}()", t.text));
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                if next.is_some_and(|n| n.is_punct('!')) {
                    push(nodes, SinkKind::PanicPath, format!("{}!", t.text));
                }
            }
            "vec" | "format" => {
                if next.is_some_and(|n| n.is_punct('!')) && !after_dot {
                    push(nodes, SinkKind::Alloc, format!("{}!", t.text));
                }
            }
            "as" => {
                let lhs = prev.filter(|p| p.kind == TokKind::Ident);
                let rhs = next.filter(|n| NARROW_INTS.contains(&n.text.as_str()));
                if let (Some(l), Some(r)) = (lhs, rhs) {
                    if truncatable_operand(&l.text) {
                        push(nodes, SinkKind::CastTruncation, format!("{} as {}", l.text, r.text));
                    }
                }
            }
            name if ALLOC_METHODS.contains(&name) => {
                if after_dot && opens_args {
                    push(nodes, SinkKind::Alloc, format!(".{name}()"));
                }
            }
            name if ALLOC_CTORS.contains(&name) => {
                if next.is_some_and(|n| n.is_punct('('))
                    && i >= 3
                    && sig[i - 1].is_punct(':')
                    && sig[i - 2].is_punct(':')
                    && ALLOC_OWNERS.contains(&sig[i - 3].text.as_str())
                {
                    push(nodes, SinkKind::Alloc, format!("{}::{name}", sig[i - 3].text));
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------------

/// Whether a candidate definition is callable with the site's shape.
fn arity_matches(cand: &FnNode, call: &Call) -> bool {
    if call.is_method {
        cand.has_self && cand.arity == call.argc
    } else {
        // Free/associated call, or the UFCS `Type::method(self, …)` form.
        (!cand.has_self && cand.arity == call.argc)
            || (cand.has_self && cand.arity + 1 == call.argc)
    }
}

/// Standard-library qualifiers that can never name a workspace `impl`
/// owner (inherent impls on foreign types are not legal Rust). A path
/// call qualified by one of these targets std, so keeping same-name
/// workspace fns as candidates would only inject phantom edges — e.g.
/// `BTreeMap::new()` inside the event loop fanning out to every
/// workspace constructor named `new` and dragging whole subsystems into
/// the event-reachable set.
fn is_std_qualifier(q: &str) -> bool {
    matches!(
        q,
        "Box" | "Vec" | "String" | "VecDeque" | "BTreeMap" | "BTreeSet" | "Rc" | "Arc"
            | "BinaryHeap" | "HashMap" | "HashSet" | "Reverse" | "PathBuf" | "Instant"
            | "Option" | "Result" | "Ordering"
            | "u8" | "u16" | "u32" | "u64" | "u128" | "usize"
            | "i8" | "i16" | "i32" | "i64" | "i128" | "isize"
            | "f32" | "f64" | "bool" | "char" | "str"
    )
}

/// Applies qualifier / `self`-receiver narrowing. Narrowing that would
/// eliminate every candidate is discarded — over-approximation beats a
/// silently dropped edge — with two exceptions where an empty result is
/// the *correct* resolution, not a failed narrowing:
///
/// * the qualifier is a std container/primitive ([`is_std_qualifier`]),
///   so the callee lives outside the workspace by construction;
/// * the qualifier names a `struct`/`enum`/`union` the workspace itself
///   declares, but no workspace fn of that owner matches this call —
///   then the callee is a `derive`d or blanket trait method
///   (`X::default()`, `X::clone()` on a derive), which is
///   compiler-generated and calls back into nothing the census should
///   attribute.
fn narrow_candidates(
    nodes: &[FnNode],
    types: &BTreeSet<String>,
    caller: usize,
    call: &Call,
    matched: Vec<usize>,
) -> Vec<usize> {
    let same_owner = |w: &usize, owner: &str, same_crate: bool| {
        nodes[*w].owner.as_deref() == Some(owner)
            && (!same_crate || nodes[*w].crate_name == nodes[caller].crate_name)
    };
    if let Some(q) = &call.qualifier {
        let target = if q == "Self" { nodes[caller].owner.clone() } else { Some(q.clone()) };
        if let Some(tname) = target {
            let own: Vec<usize> =
                matched.iter().copied().filter(|w| same_owner(w, &tname, q == "Self")).collect();
            if !own.is_empty() {
                return own;
            }
            // The workspace's impl surface for its own declared types is
            // fully known: a qualified call that matches none of it
            // targets a derived/blanket impl (`X::default()`,
            // `X::clone()` on a derive), not workspace code.
            if types.contains(tname.as_str()) {
                return Vec::new();
            }
        }
        if is_std_qualifier(q) {
            return Vec::new();
        }
        return matched;
    }
    if call.receiver_self {
        if let Some(owner) = nodes[caller].owner.clone() {
            let own: Vec<usize> =
                matched.iter().copied().filter(|w| same_owner(w, &owner, true)).collect();
            if !own.is_empty() {
                return own;
            }
        }
    }
    matched
}

// ---------------------------------------------------------------------------
// SCCs and reachability
// ---------------------------------------------------------------------------

/// Iterative Tarjan: SCC id per node plus the SCC count. Ids are assigned
/// in completion order, deterministic for a fixed graph.
fn tarjan_sccs(n: usize, adj: &[Vec<usize>]) -> (Vec<usize>, usize) {
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![0usize; n];
    let mut next_index = 0usize;
    let mut scc_count = 0usize;
    for s in 0..n {
        if index[s] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(s, 0)];
        while let Some(&(v, ei)) = work.last() {
            if ei == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ei < adj[v].len() {
                if let Some(top) = work.last_mut() {
                    top.1 += 1;
                }
                let w = adj[v][ei];
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(p, _)) = work.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc_of[w] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
            }
        }
    }
    (scc_of, scc_count)
}

/// Per-node reachability from `roots`, propagated over the SCC
/// condensation so recursion collapses to a single visit.
fn reach_over_sccs(
    roots: &[usize],
    scc_of: &[usize],
    scc_count: usize,
    scc_adj: &[BTreeSet<usize>],
    n: usize,
) -> Vec<bool> {
    let mut seen = vec![false; scc_count];
    let mut queue: Vec<usize> = roots.iter().map(|&r| scc_of[r]).collect();
    while let Some(c) = queue.pop() {
        if seen[c] {
            continue;
        }
        seen[c] = true;
        for &d in &scc_adj[c] {
            if !seen[d] {
                queue.push(d);
            }
        }
    }
    (0..n).map(|v| seen[scc_of[v]]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(crate_name: &str, file: &str) -> FileContext {
        FileContext {
            crate_name: crate_name.into(),
            is_bin: false,
            path: format!("crates/{crate_name}/src/{file}"),
        }
    }

    fn graph(files: &[(FileContext, &str)]) -> CallGraph {
        build(files.iter().map(|(c, s)| (c, *s)))
    }

    #[test]
    fn direct_recursion_and_mutual_scc_collapse() {
        let files = [(
            ctx("core", "system.rs"),
            "impl System {\n\
             pub fn run(&mut self) { self.even(4); self.rec(1); }\n\
             fn rec(&self, n: u64) { self.rec(n) }\n\
             fn even(&self, n: u64) { self.odd(n) }\n\
             fn odd(&self, n: u64) { self.even(n) }\n\
             }",
        )];
        let g = graph(&files);
        let rec = g.find("System::rec").expect("rec node");
        assert_eq!(g.edges[rec], vec![rec], "self-loop resolved");
        let even = g.find("System::even").expect("even");
        let odd = g.find("System::odd").expect("odd");
        assert_eq!(g.scc_of[even], g.scc_of[odd], "mutual recursion shares an SCC");
        assert_ne!(g.scc_of[even], g.scc_of[rec]);
        assert!(g.reach_event[rec] && g.reach_event[even] && g.reach_event[odd]);
    }

    #[test]
    fn cross_crate_same_name_over_approximates() {
        let files = [
            (ctx("core", "system.rs"), "pub fn run() { tick(3); }"),
            (ctx("smu", "smu.rs"), "pub fn tick(n: u64) {}"),
            (ctx("nvme", "device.rs"), "pub fn tick(n: u64) {}"),
            (ctx("os", "kernel.rs"), "pub fn tick(a: u64, b: u64) {}"),
        ];
        let g = graph(&files);
        let run = g.find("run").expect("run");
        assert_eq!(g.edges[run].len(), 2, "both arity-1 ticks, not the arity-2 one");
        let smu_tick = g.nodes.iter().position(|n| n.crate_name == "smu").expect("smu tick");
        let nvme_tick = g.nodes.iter().position(|n| n.crate_name == "nvme").expect("nvme tick");
        assert!(g.reach_event[smu_tick] && g.reach_event[nvme_tick]);
    }

    #[test]
    fn qualifier_narrows_to_the_impl_owner() {
        let files = [(
            ctx("core", "system.rs"),
            "impl Foo { pub fn make(x: u64) {} }\n\
             impl Bar { pub fn make(x: u64) {} }\n\
             pub fn run() { Foo::make(1); }",
        )];
        let g = graph(&files);
        let run = g.find("run").expect("run");
        let foo = g.find("Foo::make").expect("Foo::make");
        assert_eq!(g.edges[run], vec![foo], "Bar::make excluded by the qualifier");
    }

    #[test]
    fn trait_object_dispatch_connects_all_impls() {
        let files = [
            (
                ctx("core", "system.rs"),
                "pub fn run(s: &mut dyn Sweeper) { s.sweep(7); }",
            ),
            (ctx("smu", "smu.rs"), "impl Sweeper for Smu { fn sweep(&mut self, n: u64) {} }"),
            (ctx("os", "kernel.rs"), "impl Sweeper for Os { fn sweep(&mut self, n: u64) {} }"),
        ];
        let g = graph(&files);
        let run = g.find("run").expect("run");
        assert_eq!(g.edges[run].len(), 2, "dynamic dispatch keeps every impl reachable");
    }

    #[test]
    fn closure_bodies_attribute_to_the_enclosing_fn() {
        let files = [(
            ctx("core", "system.rs"),
            "impl System { pub fn run(&mut self) {\n\
             let f = |x: u64| helper(x);\n\
             self.items.retain(|e| { e.check(); true });\n\
             } }\n\
             pub fn helper(x: u64) { let v: Vec<u64> = Vec::new(); }",
        )];
        let g = graph(&files);
        let run = g.find("System::run").expect("run");
        let helper = g.find("helper").expect("helper");
        assert!(g.edges[run].contains(&helper), "call inside a closure still edges out");
        assert!(g.reach_event[helper]);
        let alloc_in_helper =
            g.nodes[helper].sinks.iter().any(|s| s.kind == SinkKind::Alloc);
        assert!(alloc_in_helper, "Vec::new census'd in the reachable helper");
    }

    #[test]
    fn cfg_test_fns_are_neither_nodes_nor_sources() {
        let files = [(
            ctx("core", "system.rs"),
            "pub fn run() {}\n\
             pub fn scary() { let m: HashMap<u32, u32> = HashMap::new(); }\n\
             #[cfg(test)]\n\
             mod tests { fn t() { run(); scary(); panic!(\"x\") } }",
        )];
        let g = graph(&files);
        assert!(g.find("t").is_none(), "test fn excluded");
        let scary = g.find("scary").expect("scary");
        assert!(!g.reach_event[scary], "call from a test fn creates no reachability");
        assert!(findings(&g).is_empty(), "unreachable sinks produce no findings");
    }

    #[test]
    fn nested_test_item_tokens_do_not_leak_to_the_parent() {
        let files = [(
            ctx("core", "system.rs"),
            "pub fn run() {\n\
             #[cfg(test)]\n\
             fn inner() { panic!(\"x\"); }\n\
             }",
        )];
        let g = graph(&files);
        let run = g.find("run").expect("run");
        assert!(g.nodes[run].sinks.is_empty(), "masked nested item stays unattributed");
    }

    #[test]
    fn det_and_panic_reachability_findings() {
        let files = [
            (
                ctx("core", "system.rs"),
                "impl System {\n\
                 pub fn run(&mut self) { self.advance(); }\n\
                 fn advance(&mut self) { wobble(); }\n\
                 pub fn finish_io(&mut self) { self.close_out(); }\n\
                 fn close_out(&mut self) { self.slot.take().unwrap(); }\n\
                 }",
            ),
            (
                ctx("harness", "pool.rs"),
                "pub fn wobble() { let t = Instant::now(); }",
            ),
        ];
        let g = graph(&files);
        let fs = findings(&g);
        let rules: Vec<&str> = fs.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"det-reachability"), "{fs:?}");
        assert!(rules.contains(&"panic-reachability"), "{fs:?}");
        let det = fs.iter().find(|f| f.rule == "det-reachability").expect("det");
        assert!(det.file.contains("harness"), "reachability crosses crate boundaries");
    }

    #[test]
    fn cast_truncation_on_suffixed_operands_only() {
        let files = [(
            ctx("core", "system.rs"),
            "pub fn run(t_ns: u64, idx: u64, lba: u64) {\n\
             let a = t_ns as u32;\n\
             let b = idx as u32;\n\
             let c = lba as u16;\n\
             let d = t_ns as u64;\n\
             }",
        )];
        let g = graph(&files);
        let fs = findings(&g);
        let casts: Vec<&str> = fs
            .iter()
            .filter(|f| f.rule == "cast-truncation")
            .map(|f| f.message.split('`').nth(1).unwrap_or(""))
            .collect();
        assert_eq!(casts, vec!["t_ns as u32", "lba as u16"]);
    }

    #[test]
    fn completion_roots_cover_finish_prefix_and_named_list() {
        let files = [(
            ctx("smu", "smu.rs"),
            "impl Smu {\n\
             pub fn finish_zero_fill(&mut self) {}\n\
             pub fn handle_completion(&mut self) {}\n\
             pub fn unrelated(&mut self) {}\n\
             }",
        )];
        let g = graph(&files);
        assert_eq!(g.completion_roots.len(), 2);
        let unrelated = g.find("Smu::unrelated").expect("node");
        assert!(!g.reach_completion[unrelated]);
    }

    #[test]
    fn ufcs_and_self_qualifier_resolution() {
        let files = [(
            ctx("core", "system.rs"),
            "impl System {\n\
             pub fn run(&mut self) { Self::helper(self); System::tick(self, 1); }\n\
             fn helper(&mut self) {}\n\
             fn tick(&mut self, n: u64) {}\n\
             }",
        )];
        let g = graph(&files);
        let run = g.find("System::run").expect("run");
        let helper = g.find("System::helper").expect("helper");
        let tick = g.find("System::tick").expect("tick");
        assert_eq!(g.edges[run], vec![helper, tick]);
    }

    #[test]
    fn public_roots_are_sim_path_pub_fns() {
        let files = [
            (ctx("core", "a.rs"), "pub fn api() {}\nfn private() {}"),
            (ctx("harness", "b.rs"), "pub fn not_sim_path() {}"),
        ];
        let g = graph(&files);
        assert_eq!(g.public_roots.len(), 1);
        assert_eq!(g.nodes[g.public_roots[0]].name, "api");
    }
}
