//! A brace-matched item tree over the lexed token stream.
//!
//! The token-stream rules in [`crate::rules`] need structural context the
//! flat stream cannot give them:
//!
//! * **Function-precise panic-policy scoping** — `#[cfg(test)]` items and
//!   `#[test]` functions are exempt from the panic rules, and the
//!   exemption must cover exactly their brace-matched bodies. A linear
//!   "skip to the next `;` or `{`" heuristic terminates early on items
//!   like `fn f(x: [u8; 4])` (the `;` inside the array type) and cannot
//!   see a `#[test]` function that sits outside a `#[cfg(test)]` module.
//! * **`audit-coverage`** — deciding whether a crate registers hwdp-audit
//!   checkers means finding `impl … Sanitizer for …` *items*, not loose
//!   `Sanitizer` identifiers in doc text or bounds.
//!
//! The expression layer ([`crate::expr`]) builds on the same idea one
//! level down: within each `Fn` item found here it brace/paren-matches
//! call arguments and operands, feeding the workspace API model
//! ([`crate::model`]) behind the semantic rule families.
//!
//! The parser is forgiving in the same spirit as the lexer: any token
//! sequence produces *a* tree; unterminated bodies extend to end-of-file.
//! Indices throughout refer to positions in the **significant** token
//! slice (comments already filtered out), matching what the rule scanner
//! iterates.

use crate::lexer::Token;

/// What kind of item a node is. Only the kinds the rules care about are
/// distinguished; everything else is `Other`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn name(…) { … }`
    Fn,
    /// `mod name { … }` or `mod name;`
    Mod,
    /// `impl … { … }` (inherent or trait).
    Impl,
    /// Any other keyword-introduced item (`struct`, `enum`, `trait`, …).
    Other,
}

/// One parsed item.
#[derive(Clone, Debug)]
pub struct Item {
    /// Classification.
    pub kind: ItemKind,
    /// The identifier following the keyword, when there is one (`fn f` →
    /// `f`; `impl` blocks have none).
    pub name: Option<String>,
    /// `true` when the item is gated test-only: a `#[cfg(test)]`-family
    /// attribute or a bare `#[test]` marker.
    pub test_only: bool,
    /// Half-open significant-token index range covering the whole item,
    /// attributes included.
    pub span: (usize, usize),
    /// Half-open token range of the braced body's *contents* (`None` for
    /// `;`-terminated items).
    pub body: Option<(usize, usize)>,
    /// Items nested inside the body.
    pub children: Vec<Item>,
}

/// The item forest of one source file.
#[derive(Clone, Debug, Default)]
pub struct ItemTree {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl ItemTree {
    /// Parses the significant (comment-free) token slice of a file.
    pub fn parse(sig: &[&Token]) -> ItemTree {
        let mut items = Vec::new();
        parse_items(sig, 0, sig.len(), &mut items);
        ItemTree { items }
    }

    /// A per-token mask: `mask[i]` is `true` when significant token `i`
    /// lies inside a test-only item (its attributes included).
    pub fn test_token_mask(&self, len: usize) -> Vec<bool> {
        let mut mask = vec![false; len];
        fn walk(items: &[Item], mask: &mut [bool]) {
            for item in items {
                if item.test_only {
                    let end = item.span.1.min(mask.len());
                    for m in mask.iter_mut().take(end).skip(item.span.0) {
                        *m = true;
                    }
                } else {
                    walk(&item.children, mask);
                }
            }
        }
        walk(&self.items, &mut mask);
        mask
    }

    /// Visits every item in the forest, depth-first.
    pub fn for_each(&self, f: &mut impl FnMut(&Item)) {
        fn walk(items: &[Item], f: &mut impl FnMut(&Item)) {
            for item in items {
                f(item);
                walk(&item.children, f);
            }
        }
        walk(&self.items, f);
    }

    /// `true` when the file contains a (non-test) trait implementation of
    /// `trait_name` — an `impl` item whose header (the tokens between
    /// `impl` and the body) names the trait followed by `for`.
    pub fn has_trait_impl(&self, sig: &[&Token], trait_name: &str) -> bool {
        let mut found = false;
        self.for_each(&mut |item| {
            if found || item.kind != ItemKind::Impl || item.test_only {
                return;
            }
            let header_end = item.body.map_or(item.span.1, |(start, _)| start);
            let header = &sig[item.span.0..header_end.min(sig.len())];
            let names_trait = header.iter().any(|t| t.is_ident(trait_name));
            let is_trait_impl = header.iter().any(|t| t.is_ident("for"));
            if names_trait && is_trait_impl {
                found = true;
            }
        });
        found
    }
}

/// Index of the delimiter closing the group opened at `open_idx`, or
/// `None` when the group runs off the end of the file.
pub fn matching_close(sig: &[&Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in sig.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Keywords that introduce an item the parser tracks as a node.
fn item_kind(t: &Token) -> Option<ItemKind> {
    if t.is_ident("fn") {
        Some(ItemKind::Fn)
    } else if t.is_ident("mod") {
        Some(ItemKind::Mod)
    } else if t.is_ident("impl") {
        Some(ItemKind::Impl)
    } else if ["struct", "enum", "union", "trait"].iter().any(|k| t.is_ident(k)) {
        Some(ItemKind::Other)
    } else {
        None
    }
}

/// Whether an attribute group (tokens strictly between `#[` and `]`)
/// marks its item test-only: `#[test]`, or a `cfg(…)` that mentions
/// `test` without negating it (`#[cfg(not(test))]` compiles *in*
/// non-test builds and must keep being linted).
fn attr_is_test(group: &[&Token]) -> bool {
    if group.len() == 1 && group[0].is_ident("test") {
        return true;
    }
    let has = |name: &str| group.iter().any(|t| t.is_ident(name));
    group.first().is_some_and(|t| t.is_ident("cfg")) && has("test") && !has("not")
}

/// Parses items in `sig[start..end]` into `out`. Non-item tokens
/// (expressions, statements, `use` declarations) are stepped over;
/// statement-level brace groups that do not belong to a tracked item are
/// skipped wholesale so their contents cannot be misread as items.
fn parse_items(sig: &[&Token], start: usize, end: usize, out: &mut Vec<Item>) {
    let mut i = start;
    // Attribute spans seen since the last item/statement boundary, with a
    // running "any of them is test-gating" flag.
    let mut attr_start: Option<usize> = None;
    let mut attrs_test = false;
    while i < end {
        let t = sig[i];
        if t.is_punct('#') && sig.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            let Some(close) = matching_close(sig, i + 1, '[', ']') else {
                return; // unterminated attribute: nothing more to parse
            };
            let group: Vec<&Token> = sig[i + 2..close.min(end)].to_vec();
            attrs_test |= attr_is_test(&group);
            attr_start.get_or_insert(i);
            i = close + 1;
            continue;
        }
        if let Some(kind) = item_kind(t) {
            let span_start = attr_start.take().unwrap_or(i);
            let item = parse_one(sig, span_start, i, end, kind, attrs_test);
            i = item.span.1;
            attrs_test = false;
            out.push(item);
            continue;
        }
        // Not an item: drop any attributes that turned out to decorate a
        // statement (`#[allow(…)] let x = …;`), skip opaque brace groups.
        attr_start = None;
        attrs_test = false;
        if t.is_punct('{') {
            i = matching_close(sig, i, '{', '}').map_or(end, |c| c + 1);
        } else {
            i += 1;
        }
    }
}

/// Parses the single item whose keyword sits at `kw`; `span_start` points
/// at its first attribute (or the keyword itself).
fn parse_one(
    sig: &[&Token],
    span_start: usize,
    kw: usize,
    end: usize,
    kind: ItemKind,
    test_only: bool,
) -> Item {
    // `impl` blocks have no item name (the following ident is a type or
    // trait path, possibly behind generics).
    let name = if kind == ItemKind::Impl {
        None
    } else {
        sig.get(kw + 1)
            .filter(|t| t.kind == crate::lexer::TokKind::Ident)
            .map(|t| t.text.clone())
    };
    // Find the body `{` or the terminating `;`, tracking paren/bracket
    // depth so a `;` inside `[u8; 4]` or a default argument cannot end
    // the item early.
    let mut j = kw + 1;
    let mut paren = 0i64;
    let mut bracket = 0i64;
    while j < end {
        let t = sig[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if paren == 0 && bracket == 0 {
            if t.is_punct(';') {
                return Item { kind, name, test_only, span: (span_start, j + 1), body: None, children: Vec::new() };
            }
            if t.is_punct('{') {
                let close = matching_close(sig, j, '{', '}').unwrap_or(end.saturating_sub(1));
                let mut children = Vec::new();
                parse_items(sig, j + 1, close.min(end), &mut children);
                return Item {
                    kind,
                    name,
                    test_only,
                    span: (span_start, (close + 1).min(end)),
                    body: Some((j + 1, close.min(end))),
                    children,
                };
            }
        }
        j += 1;
    }
    Item { kind, name, test_only, span: (span_start, end), body: None, children: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, TokKind};

    fn tree_of(src: &str) -> (Vec<crate::lexer::Token>, ItemTree) {
        let toks = lex(src);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let tree = ItemTree::parse(&sig);
        (toks, tree)
    }

    fn names(items: &[Item]) -> Vec<&str> {
        items.iter().filter_map(|i| i.name.as_deref()).collect()
    }

    #[test]
    fn top_level_items_and_nesting() {
        let (_, tree) = tree_of(
            "fn a() { fn inner() {} }\nmod m { struct S; fn b() {} }\nimpl T for U { fn c() {} }",
        );
        assert_eq!(tree.items.len(), 3);
        assert_eq!(names(&tree.items), vec!["a", "m"]); // impl has no name
        assert_eq!(names(&tree.items[0].children), vec!["inner"]);
        assert_eq!(names(&tree.items[1].children), vec!["S", "b"]);
        assert_eq!(tree.items[2].kind, ItemKind::Impl);
        assert_eq!(names(&tree.items[2].children), vec!["c"]);
    }

    #[test]
    fn semicolon_inside_array_type_does_not_end_the_item() {
        // The regression that motivated the tree: the old linear skip saw
        // the `;` in `[u8; 4]` as the item terminator.
        let (toks, tree) = tree_of("#[cfg(test)]\nfn f(x: [u8; 4]) { x.len(); }\nfn g() {}");
        assert_eq!(tree.items.len(), 2);
        assert!(tree.items[0].test_only);
        assert!(!tree.items[1].test_only);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let mask = tree.test_token_mask(sig.len());
        // Every token of `f` (attr included) is masked; `g` is not.
        let g_kw = sig.iter().position(|t| t.is_ident("g")).expect("g exists");
        assert!(!mask[g_kw]);
        let len_call = sig.iter().position(|t| t.is_ident("len")).expect("len exists");
        assert!(mask[len_call]);
    }

    #[test]
    fn test_attribute_marks_function_outside_cfg_test_module() {
        let (toks, tree) = tree_of("#[test]\nfn t() { assert!(true); }\nfn lib() {}");
        assert!(tree.items[0].test_only);
        assert!(!tree.items[1].test_only);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let mask = tree.test_token_mask(sig.len());
        let assert_tok = sig.iter().position(|t| t.is_ident("assert")).expect("assert");
        assert!(mask[assert_tok]);
    }

    #[test]
    fn cfg_not_test_is_not_test_only() {
        let (_, tree) = tree_of("#[cfg(not(test))]\nfn f() {}\n#[cfg(all(test, unix))]\nfn g() {}");
        assert!(!tree.items[0].test_only, "cfg(not(test)) code ships in non-test builds");
        assert!(tree.items[1].test_only);
    }

    #[test]
    fn statement_attributes_do_not_leak_onto_the_next_item() {
        let (_, tree) = tree_of("fn f() { }\n#[cfg(test)] use x::y;\nfn g() {}");
        // The attribute belongs to the `use` statement, which is stepped
        // over; `g` must not inherit test-only status.
        let g = tree.items.iter().find(|i| i.name.as_deref() == Some("g")).expect("g parsed");
        assert!(!g.test_only);
    }

    #[test]
    fn trait_impl_detection() {
        let (toks, tree) = tree_of(
            "impl hwdp_sim::Sanitizer for Smu { fn layer(&self) -> &'static str { \"smu\" } }\n\
             impl Smu { fn other(&self) {} }",
        );
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        assert!(tree.has_trait_impl(&sig, "Sanitizer"));
        assert!(!tree.has_trait_impl(&sig, "Display"));
    }

    #[test]
    fn inherent_impl_mentioning_trait_in_body_does_not_count() {
        // `Sanitizer` appearing only inside a body (e.g. a method calling
        // another layer's sanitizer) is not a registration.
        let (toks, tree) =
            tree_of("impl Smu { fn run(&self) { takes::<dyn Sanitizer>(self); } }");
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        assert!(!tree.has_trait_impl(&sig, "Sanitizer"));
    }

    #[test]
    fn cfg_test_trait_impl_does_not_count_as_registration() {
        let (toks, tree) =
            tree_of("#[cfg(test)]\nimpl hwdp_sim::Sanitizer for Fake { }");
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        assert!(!tree.has_trait_impl(&sig, "Sanitizer"));
    }

    #[test]
    fn mod_declaration_without_body() {
        let (_, tree) = tree_of("mod a;\nmod b { fn f() {} }");
        assert_eq!(tree.items.len(), 2);
        assert!(tree.items[0].body.is_none());
        assert!(tree.items[1].body.is_some());
    }

    #[test]
    fn unterminated_body_extends_to_eof() {
        let (_, tree) = tree_of("fn f() { let x = 1;");
        assert_eq!(tree.items.len(), 1);
    }

    #[test]
    fn test_mod_masks_nested_everything() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        let (toks, tree) = tree_of(src);
        let sig: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
        let mask = tree.test_token_mask(sig.len());
        let unwrap_tok = sig.iter().position(|t| t.is_ident("unwrap")).expect("unwrap");
        assert!(mask[unwrap_tok]);
        let lib_tok = sig.iter().position(|t| t.is_ident("lib")).expect("lib");
        assert!(!mask[lib_tok]);
    }
}
