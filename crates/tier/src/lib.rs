//! hwdp-tier: tiered storage with hot/cold page migration.
//!
//! The paper evaluates HWDP against three device classes one at a time;
//! this crate turns the single-device reproduction into a storage
//! hierarchy: a *fast* and a *slow* NVMe device, a per-page hotness
//! tracker, and a virtual-time migration engine that promotes hot pages
//! into the (capacity-limited) fast tier and demotes cold ones back.
//!
//! The engine is deliberately device-agnostic: it reasons about pages by
//! their *home LBA on the slow tier* (a stable `u64` key), decides *what*
//! to move, and leaves the *how* — issuing real NVMe reads and writes so
//! migration traffic contends with demand misses — to the system driver.
//! Placement decisions sit behind the [`PlacementPolicy`] trait so
//! static, LRU-epoch, and promotion-threshold policies are swappable
//! research knobs (the Virtuoso methodology), not constants.
//!
//! Ownership discipline: every page is owned by exactly one tier at any
//! virtual-time instant. A migration holds the page in an explicit
//! in-flight state (`PromoteInFlight` / `DemoteInFlight`) while its copy
//! I/O is outstanding and transfers ownership atomically at commit; the
//! [`Sanitizer`] impl audits the fast-LBA ownership bijection and the
//! capacity bound, and the system driver cross-checks engine residence
//! against the file system's per-page location overrides.

use std::collections::BTreeMap;

use hwdp_nvme::profile::DeviceProfile;
use hwdp_sim::sanitize::{AuditReport, SanitizeLevel, Sanitizer};
use hwdp_sim::time::Duration;

/// Which placement policy drives migration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PolicyKind {
    /// Never migrate: pages stay on their home (slow) tier. The control
    /// arm of any policy comparison.
    Static,
    /// Promote pages touched in the current epoch, demote pages idle for
    /// a fixed number of epochs (classic epoch-LRU).
    LruEpoch,
    /// Promote pages whose decayed access count crosses a threshold,
    /// demote pages whose count decayed to zero.
    #[default]
    Threshold,
}

impl PolicyKind {
    /// Stable lower-case name (CLI value and artifact key).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Static => "static",
            PolicyKind::LruEpoch => "lru",
            PolicyKind::Threshold => "threshold",
        }
    }

    /// Parses a policy name produced by [`PolicyKind::name`].
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s {
            "static" => Some(PolicyKind::Static),
            "lru" | "lru-epoch" => Some(PolicyKind::LruEpoch),
            "threshold" => Some(PolicyKind::Threshold),
            _ => None,
        }
    }

    /// Every policy, in deterministic grid order.
    pub const ALL: [PolicyKind; 3] =
        [PolicyKind::Static, PolicyKind::LruEpoch, PolicyKind::Threshold];
}

/// Full tiering configuration the system driver builds a hierarchy from.
#[derive(Clone, Copy, Debug)]
pub struct TierConfig {
    /// The fast tier's device (extra controller added at construction).
    pub fast: DeviceProfile,
    /// The slow tier's device (replaces the configured home device so
    /// data starts cold on the slow tier).
    pub slow: DeviceProfile,
    /// Fast-tier capacity as a percentage of the tracked page population.
    pub cap_pct: u32,
    /// The placement policy.
    pub policy: PolicyKind,
    /// Virtual-time period between migration-daemon ticks.
    pub period: Duration,
    /// Maximum promotions (and, separately, demotions) planned per tick.
    pub batch: usize,
}

/// Where a tracked page currently lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TierResidence {
    /// On its home LBA on the slow tier.
    Slow,
    /// On the given fast-tier LBA.
    Fast(u64),
    /// Copy to the (reserved) fast LBA is in flight; the slow copy still
    /// owns the page until commit.
    PromoteInFlight(u64),
    /// Copy back to the home LBA is in flight; the fast LBA still owns
    /// the page until commit.
    DemoteInFlight(u64),
}

/// A page's trackable state, as seen by a [`PlacementPolicy`].
#[derive(Clone, Copy, Debug)]
pub struct PageView {
    /// The page's key (its home LBA on the slow tier).
    pub key: u64,
    /// Decayed access count (halved every epoch).
    pub heat: u32,
    /// Epoch of the most recent device access.
    pub last_epoch: u64,
}

/// A placement policy: decides, per epoch, which slow-resident pages to
/// promote and which fast-resident pages to demote. Implementations must
/// be deterministic pure functions of the page view and epoch.
pub trait PlacementPolicy: Send {
    /// Stable policy name for artifacts and reports.
    fn name(&self) -> &'static str;
    /// Whether a slow-resident page should be promoted this epoch.
    fn promote(&self, page: &PageView, epoch: u64) -> bool;
    /// Standalone demotion: `Some(score)` to demote a fast-resident page
    /// (lower scores are demoted first), `None` to keep it.
    fn demote(&self, page: &PageView, epoch: u64) -> Option<u64>;
}

/// Never migrates anything.
pub struct StaticPolicy;

impl PlacementPolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        "static"
    }
    fn promote(&self, _page: &PageView, _epoch: u64) -> bool {
        false
    }
    fn demote(&self, _page: &PageView, _epoch: u64) -> Option<u64> {
        None
    }
}

/// Epoch-LRU: promote what was touched this epoch, demote what has been
/// idle for `idle_epochs`.
pub struct LruEpochPolicy {
    /// Epochs of inactivity before a fast-resident page is demoted.
    pub idle_epochs: u64,
}

impl PlacementPolicy for LruEpochPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }
    fn promote(&self, page: &PageView, epoch: u64) -> bool {
        page.last_epoch == epoch && page.heat > 0
    }
    fn demote(&self, page: &PageView, epoch: u64) -> Option<u64> {
        (epoch.saturating_sub(page.last_epoch) >= self.idle_epochs).then_some(page.last_epoch)
    }
}

/// Promotion-threshold: promote once the decayed access count reaches
/// `threshold`, demote once it decays back to zero.
pub struct ThresholdPolicy {
    /// Decayed access count at which a slow page becomes promotion-worthy.
    pub threshold: u32,
}

impl PlacementPolicy for ThresholdPolicy {
    fn name(&self) -> &'static str {
        "threshold"
    }
    fn promote(&self, page: &PageView, _epoch: u64) -> bool {
        page.heat >= self.threshold
    }
    fn demote(&self, page: &PageView, _epoch: u64) -> Option<u64> {
        (page.heat == 0).then_some(page.last_epoch)
    }
}

/// Builds the concrete policy for a [`PolicyKind`].
pub fn make_policy(kind: PolicyKind) -> Box<dyn PlacementPolicy> {
    match kind {
        PolicyKind::Static => Box::new(StaticPolicy),
        PolicyKind::LruEpoch => Box::new(LruEpochPolicy { idle_epochs: 4 }),
        PolicyKind::Threshold => Box::new(ThresholdPolicy { threshold: 2 }),
    }
}

/// One migration the engine wants the system driver to perform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MigrationPlan {
    /// Copy the page from its home LBA to the reserved `fast_lba`.
    Promote {
        /// Page key (home slow LBA).
        key: u64,
        /// Destination LBA on the fast tier.
        fast_lba: u64,
    },
    /// Copy the page from `fast_lba` back to its home LBA.
    Demote {
        /// Page key (home slow LBA).
        key: u64,
        /// Source LBA on the fast tier.
        fast_lba: u64,
    },
}

impl MigrationPlan {
    /// The page the plan moves.
    pub fn key(self) -> u64 {
        match self {
            MigrationPlan::Promote { key, .. } | MigrationPlan::Demote { key, .. } => key,
        }
    }
}

/// Tiering outcome counters, exported as `tier/...` metrics only when
/// tiering was enabled (single-device artifacts stay byte-identical).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct TierReport {
    /// Committed promotions (slow → fast).
    pub promotions: u64,
    /// Committed demotions (fast → slow).
    pub demotions: u64,
    /// Migrations aborted (I/O failure, concurrent dirty writeback, or
    /// a location change under the copy).
    pub aborts: u64,
    /// Tracked demand reads served by the fast tier.
    pub fast_hits: u64,
    /// Tracked demand reads served by the slow tier.
    pub slow_hits: u64,
    /// `fast_hits / (fast_hits + slow_hits)` over the whole run.
    pub fast_hit_ratio: f64,
    /// The same ratio over the first half of the run's epochs.
    pub fast_hit_ratio_early: f64,
    /// The same ratio over the second half of the run's epochs.
    pub fast_hit_ratio_late: f64,
    /// Fast-tier device service counters (reads include migration I/O).
    pub fast_reads: u64,
    /// Fast-tier device writes (demand writebacks plus promotions).
    pub fast_writes: u64,
    /// Slow-tier device reads.
    pub slow_reads: u64,
    /// Slow-tier device writes.
    pub slow_writes: u64,
}

/// A tracked page's internal state.
#[derive(Clone, Copy, Debug)]
struct PageState {
    residence: TierResidence,
    heat: u32,
    last_epoch: u64,
}

/// The tiering engine: hotness tracking, placement planning, and
/// ownership bookkeeping over one fast / one slow tier.
pub struct TierEngine {
    cfg: TierConfig,
    policy: Box<dyn PlacementPolicy>,
    /// Tracked pages keyed by home slow LBA.
    pages: BTreeMap<u64, PageState>,
    /// Fast-LBA ownership: fast LBA → page key. Exactly the pages whose
    /// residence is `Fast`/`PromoteInFlight`/`DemoteInFlight` on that LBA.
    fast_map: BTreeMap<u64, u64>,
    /// Fast-LBA bump allocator plus free list (LIFO, deterministic).
    next_fast: u64,
    free_fast: Vec<u64>,
    epoch: u64,
    promotions: u64,
    demotions: u64,
    aborts: u64,
    fast_hits: u64,
    slow_hits: u64,
    /// Per-epoch `(fast, slow)` hit deltas, for the early/late ratios.
    epoch_hits: Vec<(u64, u64)>,
    /// Totals already folded into `epoch_hits`.
    counted_hits: (u64, u64),
    /// Scratch buffers reused across ticks so steady-state planning does
    /// not allocate (always drained before a tick returns).
    scratch_cands: Vec<(u32, u64)>,
    scratch_views: Vec<PageView>,
    scratch_victims: Vec<(u8, u64, u64)>,
}

impl TierEngine {
    /// Creates an engine for `cfg` with no tracked pages.
    pub fn new(cfg: TierConfig) -> TierEngine {
        TierEngine {
            policy: make_policy(cfg.policy),
            cfg,
            pages: BTreeMap::new(),
            fast_map: BTreeMap::new(),
            next_fast: 0,
            free_fast: Vec::new(),
            epoch: 0,
            promotions: 0,
            demotions: 0,
            aborts: 0,
            fast_hits: 0,
            slow_hits: 0,
            epoch_hits: Vec::new(),
            counted_hits: (0, 0),
            scratch_cands: Vec::new(),
            scratch_views: Vec::new(),
            scratch_victims: Vec::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TierConfig {
        &self.cfg
    }

    /// Starts tracking a page (idempotent); new pages are slow-resident.
    pub fn register(&mut self, key: u64) {
        self.pages.entry(key).or_insert(PageState {
            residence: TierResidence::Slow,
            heat: 0,
            last_epoch: 0,
        });
    }

    /// Number of tracked pages.
    pub fn tracked(&self) -> usize {
        self.pages.len()
    }

    /// Fast-tier capacity in pages: `cap_pct` percent of the tracked
    /// population, at least one page.
    pub fn fast_limit(&self) -> usize {
        ((self.pages.len() as u64 * self.cfg.cap_pct as u64 / 100).max(1)) as usize
    }

    /// Current residence of a tracked page.
    pub fn residence_of(&self, key: u64) -> Option<TierResidence> {
        self.pages.get(&key).map(|p| p.residence)
    }

    /// Whether `key` has a migration in flight.
    pub fn in_flight(&self, key: u64) -> bool {
        matches!(
            self.residence_of(key),
            Some(TierResidence::PromoteInFlight(_) | TierResidence::DemoteInFlight(_))
        )
    }

    /// The page owning a fast-tier LBA, if any.
    pub fn key_of_fast(&self, fast_lba: u64) -> Option<u64> {
        self.fast_map.get(&fast_lba).copied()
    }

    /// Records one demand read serviced by a device. `fast` selects the
    /// tier the read hit; `lba` is the device-local LBA. Reads of
    /// untracked blocks are ignored.
    pub fn record_access(&mut self, fast: bool, lba: u64) {
        let key = if fast {
            match self.fast_map.get(&lba) {
                Some(k) => *k,
                None => return,
            }
        } else {
            lba
        };
        let epoch = self.epoch;
        if let Some(p) = self.pages.get_mut(&key) {
            p.heat = p.heat.saturating_add(1);
            p.last_epoch = epoch;
            if fast {
                self.fast_hits += 1;
            } else {
                self.slow_hits += 1;
            }
        }
    }

    fn alloc_fast(&mut self) -> u64 {
        if let Some(f) = self.free_fast.pop() {
            return f;
        }
        let f = self.next_fast;
        self.next_fast += 1;
        f
    }

    /// One migration-daemon tick: evaluates the policy over every tracked
    /// page and returns the migrations to start. `eligible` filters pages
    /// the driver cannot safely migrate right now (e.g. resident in the
    /// page cache). Planned pages are marked in flight; the driver must
    /// later [`TierEngine::commit`] or [`TierEngine::abort`] each one.
    /// After planning, heats decay by half and the epoch advances.
    pub fn plan_tick(&mut self, eligible: impl FnMut(u64) -> bool) -> Vec<MigrationPlan> {
        let mut plans = Vec::new();
        self.plan_tick_into(eligible, &mut plans);
        plans
    }

    /// Allocation-free [`TierEngine::plan_tick`]: planned migrations are
    /// appended to the caller's scratch buffer, and the intermediate
    /// candidate/victim lists reuse engine-owned scratch storage.
    pub fn plan_tick_into(
        &mut self,
        mut eligible: impl FnMut(u64) -> bool,
        plans: &mut Vec<MigrationPlan>,
    ) {
        let epoch = self.epoch;

        // Promotion candidates: hottest first, key order tie-break.
        let mut cands = std::mem::take(&mut self.scratch_cands);
        cands.extend(
            self.pages
                .iter()
                .filter(|(k, p)| {
                    matches!(p.residence, TierResidence::Slow)
                        && self.policy.promote(
                            &PageView { key: **k, heat: p.heat, last_epoch: p.last_epoch },
                            epoch,
                        )
                })
                .map(|(k, p)| (p.heat, *k)),
        );
        cands.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let limit = self.fast_limit();
        let mut promoted = 0usize;
        let mut overflow = 0usize;
        for (_, key) in cands.drain(..) {
            if promoted >= self.cfg.batch || self.fast_map.len() >= limit {
                // Pressure: candidates that could not be placed this tick
                // drive room-making demotions below; the page retries on a
                // later tick once a slot is free.
                overflow += 1;
                continue;
            }
            if !eligible(key) {
                continue;
            }
            let f = self.alloc_fast();
            self.fast_map.insert(f, key);
            if let Some(p) = self.pages.get_mut(&key) {
                p.residence = TierResidence::PromoteInFlight(f);
            }
            plans.push(MigrationPlan::Promote { key, fast_lba: f });
            promoted += 1;
        }
        self.scratch_cands = cands;

        // Demotion victims: policy-driven demotions first, then (only
        // under promotion pressure) forced demotions of the coldest
        // fast-resident pages to make room for the next tick.
        let mut fast_resident = std::mem::take(&mut self.scratch_views);
        fast_resident.extend(
            self.pages
                .iter()
                .filter(|(_, p)| matches!(p.residence, TierResidence::Fast(_)))
                .map(|(k, p)| PageView { key: *k, heat: p.heat, last_epoch: p.last_epoch }),
        );
        let mut victims = std::mem::take(&mut self.scratch_victims);
        for v in &fast_resident {
            match self.policy.demote(v, epoch) {
                Some(score) => victims.push((0, score, v.key)),
                None if overflow > 0 => {
                    // Coldest first: heat, then staleness, then key.
                    let score = ((v.heat as u64) << 32) | (v.last_epoch & 0xFFFF_FFFF);
                    victims.push((1, score, v.key));
                }
                None => {}
            }
        }
        victims.sort_unstable();
        let mut demoted = 0usize;
        let mut forced = 0usize;
        for (kind, _, key) in victims.drain(..) {
            if demoted >= self.cfg.batch {
                break;
            }
            if kind == 1 {
                if forced >= overflow {
                    continue;
                }
                forced += 1;
            }
            if !eligible(key) {
                continue;
            }
            let Some(p) = self.pages.get_mut(&key) else { continue };
            let TierResidence::Fast(f) = p.residence else { continue };
            p.residence = TierResidence::DemoteInFlight(f);
            plans.push(MigrationPlan::Demote { key, fast_lba: f });
            demoted += 1;
        }
        fast_resident.clear();
        self.scratch_views = fast_resident;
        self.scratch_victims = victims;

        // Close the epoch: fold hit deltas, decay heat, advance.
        let delta =
            (self.fast_hits - self.counted_hits.0, self.slow_hits - self.counted_hits.1);
        self.epoch_hits.push(delta);
        self.counted_hits = (self.fast_hits, self.slow_hits);
        for p in self.pages.values_mut() {
            p.heat /= 2;
        }
        self.epoch += 1;
    }

    /// Commits an in-flight migration: ownership transfers atomically at
    /// this virtual-time instant. Returns the new residence, or `None`
    /// when no migration was in flight for `key`.
    pub fn commit(&mut self, key: u64) -> Option<TierResidence> {
        let p = self.pages.get_mut(&key)?;
        match p.residence {
            TierResidence::PromoteInFlight(f) => {
                p.residence = TierResidence::Fast(f);
                self.promotions += 1;
                Some(p.residence)
            }
            TierResidence::DemoteInFlight(f) => {
                p.residence = TierResidence::Slow;
                self.fast_map.remove(&f);
                self.free_fast.push(f);
                self.demotions += 1;
                Some(p.residence)
            }
            _ => None,
        }
    }

    /// Aborts an in-flight migration, restoring the previous residence
    /// (a reserved promotion slot returns to the free pool).
    pub fn abort(&mut self, key: u64) {
        let Some(p) = self.pages.get_mut(&key) else { return };
        match p.residence {
            TierResidence::PromoteInFlight(f) => {
                p.residence = TierResidence::Slow;
                self.fast_map.remove(&f);
                self.free_fast.push(f);
                self.aborts += 1;
            }
            TierResidence::DemoteInFlight(f) => {
                p.residence = TierResidence::Fast(f);
                self.aborts += 1;
            }
            _ => {}
        }
    }

    /// Tiering counters plus overall and early/late fast-hit ratios.
    /// Device service counters are filled in by the system driver.
    pub fn report(&self) -> TierReport {
        let ratio = |fast: u64, slow: u64| {
            let total = fast + slow;
            if total == 0 {
                0.0
            } else {
                fast as f64 / total as f64
            }
        };
        // Hits since the last tick form a final partial epoch, summed in
        // place (no copy of the epoch history).
        let tail =
            (self.fast_hits - self.counted_hits.0, self.slow_hits - self.counted_hits.1);
        let len = self.epoch_hits.len() + usize::from(tail != (0, 0));
        let mid = len / 2;
        // The early window always covers at least one epoch when any exist
        // (`mid` is 0 for a single epoch, which then lands in both halves).
        let early_end = mid.max(usize::from(len > 0));
        let (mut early_f, mut early_s) = (0u64, 0u64);
        let (mut late_f, mut late_s) = (0u64, 0u64);
        for i in 0..len {
            let d = self.epoch_hits.get(i).copied().unwrap_or(tail);
            if i < early_end {
                early_f += d.0;
                early_s += d.1;
            }
            if i >= mid {
                late_f += d.0;
                late_s += d.1;
            }
        }
        TierReport {
            promotions: self.promotions,
            demotions: self.demotions,
            aborts: self.aborts,
            fast_hits: self.fast_hits,
            slow_hits: self.slow_hits,
            fast_hit_ratio: ratio(self.fast_hits, self.slow_hits),
            fast_hit_ratio_early: ratio(early_f, early_s),
            fast_hit_ratio_late: ratio(late_f, late_s),
            ..TierReport::default()
        }
    }

    /// Test hook: breaks the fast-LBA ownership bijection by pointing a
    /// fast slot at a slow-resident page, for negative audit tests.
    #[cfg(test)]
    pub(crate) fn corrupt_fast_owner_for_test(&mut self) {
        let f = self.next_fast;
        self.next_fast += 1;
        let key = self.pages.keys().next().copied().unwrap_or(0);
        self.fast_map.insert(f, key);
    }
}

impl std::fmt::Debug for TierEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierEngine")
            .field("policy", &self.policy.name())
            .field("tracked", &self.pages.len())
            .field("fast_used", &self.fast_map.len())
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl Sanitizer for TierEngine {
    fn layer(&self) -> &'static str {
        "tier"
    }

    fn sanitize(&self, level: SanitizeLevel, report: &mut AuditReport) {
        if !level.cheap_checks() {
            return;
        }
        // tier-fast-capacity: the reserved fast-tier population (resident
        // plus in-flight) never exceeds the configured capacity.
        report.check_args(
            "tier",
            "tier-fast-capacity",
            self.fast_map.len() <= self.fast_limit(),
            format_args!(
                "fast tier holds {} pages, capacity {}",
                self.fast_map.len(),
                self.fast_limit()
            ),
        );
        if !level.full_checks() {
            return;
        }
        // tier-fast-owner-unique: fast_map ↔ residence is a bijection —
        // every fast LBA is owned by exactly one page whose residence
        // names that LBA, and vice versa.
        for (f, key) in &self.fast_map {
            let ok = matches!(
                self.residence_of(*key),
                Some(
                    TierResidence::Fast(r)
                        | TierResidence::PromoteInFlight(r)
                        | TierResidence::DemoteInFlight(r)
                ) if r == *f
            );
            report.check_args(
                "tier",
                "tier-fast-owner-unique",
                ok,
                format_args!("fast LBA {f} maps to page {key} whose residence does not own it"),
            );
        }
        for (key, p) in &self.pages {
            let (claimed, lba) = match p.residence {
                TierResidence::Slow => (false, 0),
                TierResidence::Fast(f)
                | TierResidence::PromoteInFlight(f)
                | TierResidence::DemoteInFlight(f) => (true, f),
            };
            if claimed {
                report.check_args(
                    "tier",
                    "tier-fast-owner-unique",
                    self.fast_map.get(&lba) == Some(key),
                    format_args!("page {key} claims fast LBA {lba} without owning it"),
                );
            }
            // tier-inflight-residence: in-flight pages still hold a
            // reserved slot — their LBA must be inside the allocator's
            // issued range and not simultaneously on the free list.
            if matches!(
                p.residence,
                TierResidence::PromoteInFlight(_) | TierResidence::DemoteInFlight(_)
            ) {
                report.check_args(
                    "tier",
                    "tier-inflight-residence",
                    lba < self.next_fast && !self.free_fast.contains(&lba),
                    format_args!("in-flight page {key} holds unissued or freed fast LBA {lba}"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: PolicyKind) -> TierConfig {
        TierConfig {
            fast: DeviceProfile::OPTANE_PMM,
            slow: DeviceProfile::Z_SSD,
            cap_pct: 25,
            policy,
            period: Duration::from_micros(150),
            batch: 8,
        }
    }

    fn engine_with_pages(policy: PolicyKind, n: u64) -> TierEngine {
        let mut e = TierEngine::new(cfg(policy));
        for k in 0..n {
            e.register(k);
        }
        e
    }

    #[test]
    fn policy_names_round_trip() {
        for p in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(p.name()), Some(p));
            assert_eq!(make_policy(p).name(), p.name());
        }
        assert_eq!(PolicyKind::parse("bogus"), None);
    }

    #[test]
    fn static_policy_never_migrates() {
        let mut e = engine_with_pages(PolicyKind::Static, 16);
        for _ in 0..4 {
            for k in 0..16 {
                e.record_access(false, k);
            }
            assert!(e.plan_tick(|_| true).is_empty());
        }
        assert_eq!(e.report().promotions, 0);
    }

    #[test]
    fn threshold_promotes_hot_and_demotes_cold() {
        let mut e = engine_with_pages(PolicyKind::Threshold, 16);
        e.record_access(false, 3);
        e.record_access(false, 3);
        let plans = e.plan_tick(|_| true);
        assert_eq!(plans, vec![MigrationPlan::Promote { key: 3, fast_lba: 0 }]);
        assert_eq!(e.residence_of(3), Some(TierResidence::PromoteInFlight(0)));
        assert_eq!(e.commit(3), Some(TierResidence::Fast(0)));
        // Fast reads now resolve through the fast map and count as hits.
        e.record_access(true, 0);
        assert!(e.report().fast_hits >= 1);
        // Idle ticks decay heat to zero → standalone demotion.
        e.plan_tick(|_| true);
        e.plan_tick(|_| true);
        let plans = e.plan_tick(|_| true);
        assert_eq!(plans, vec![MigrationPlan::Demote { key: 3, fast_lba: 0 }]);
        assert_eq!(e.commit(3), Some(TierResidence::Slow));
        let r = e.report();
        assert_eq!((r.promotions, r.demotions, r.aborts), (1, 1, 0));
    }

    #[test]
    fn lru_epoch_promotes_recent_and_demotes_idle() {
        let mut e = engine_with_pages(PolicyKind::LruEpoch, 16);
        e.record_access(false, 7);
        let plans = e.plan_tick(|_| true);
        assert_eq!(plans, vec![MigrationPlan::Promote { key: 7, fast_lba: 0 }]);
        e.commit(7);
        // Four idle epochs later the page is demoted.
        let mut demoted = Vec::new();
        for _ in 0..5 {
            demoted.extend(e.plan_tick(|_| true));
        }
        assert_eq!(demoted, vec![MigrationPlan::Demote { key: 7, fast_lba: 0 }]);
    }

    #[test]
    fn capacity_limit_blocks_promotions_and_forces_room_making() {
        // 8 pages at 25 % → fast limit 2.
        let mut e = engine_with_pages(PolicyKind::Threshold, 8);
        assert_eq!(e.fast_limit(), 2);
        for k in 0..3 {
            e.record_access(false, k);
            e.record_access(false, k);
        }
        let plans = e.plan_tick(|_| true);
        // Only two fit; the third creates pressure.
        assert_eq!(plans.len(), 2);
        for p in plans {
            e.commit(p.key());
        }
        // Keep page 2 hot while 0/1 cool: pressure forces demotion of a
        // cold fast resident, freeing a slot for the next tick.
        e.record_access(false, 2);
        e.record_access(false, 2);
        let plans = e.plan_tick(|_| true);
        assert!(
            plans.iter().any(|p| matches!(p, MigrationPlan::Demote { .. })),
            "pressure must force a room-making demotion: {plans:?}"
        );
        for p in plans {
            e.commit(p.key());
        }
        e.record_access(false, 2);
        e.record_access(false, 2);
        let plans = e.plan_tick(|_| true);
        assert!(
            plans.contains(&MigrationPlan::Promote { key: 2, fast_lba: 1 })
                || plans.contains(&MigrationPlan::Promote { key: 2, fast_lba: 0 }),
            "freed slot serves the hot page next tick: {plans:?}"
        );
    }

    #[test]
    fn cap_zero_still_keeps_one_fast_slot() {
        // `cap:0` is a degenerate but legal config: the limit floors at
        // one page, so the engine never divides by zero or plans an
        // unplaceable promotion.
        let mut c = cfg(PolicyKind::Threshold);
        c.cap_pct = 0;
        let mut e = TierEngine::new(c);
        for k in 0..64 {
            e.register(k);
        }
        assert_eq!(e.fast_limit(), 1);
        for k in 0..4 {
            e.record_access(false, k);
            e.record_access(false, k);
        }
        let plans = e.plan_tick(|_| true);
        let promotes =
            plans.iter().filter(|p| matches!(p, MigrationPlan::Promote { .. })).count();
        assert_eq!(promotes, 1, "only the single slot is planned: {plans:?}");
        for p in plans {
            e.commit(p.key());
        }
        let mut report = hwdp_sim::sanitize::AuditReport::new();
        e.sanitize(SanitizeLevel::Full, &mut report);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn exactly_full_fast_tier_demotes_coldest_under_pressure() {
        // Fill the fast tier to exactly its limit with pages the policy
        // would keep (nonzero heat), then heat a third page past the
        // promotion threshold: the tick must plan no promotion, and must
        // force-demote exactly one (the coldest) resident to make room.
        let mut e = engine_with_pages(PolicyKind::Threshold, 8);
        assert_eq!(e.fast_limit(), 2);
        for k in 0..2 {
            e.record_access(false, k);
            e.record_access(false, k);
        }
        for p in e.plan_tick(|_| true) {
            e.commit(p.key());
        }
        // Both residents warm (policy demote says keep), candidate hotter.
        e.record_access(true, 0);
        e.record_access(true, 1);
        e.record_access(false, 2);
        e.record_access(false, 2);
        let plans = e.plan_tick(|_| true);
        assert!(
            plans.iter().all(|p| matches!(p, MigrationPlan::Demote { .. })),
            "an exactly-full fast tier admits no promotion this tick: {plans:?}"
        );
        assert_eq!(plans.len(), 1, "one room-making demotion per overflow: {plans:?}");
        for p in plans {
            e.commit(p.key());
        }
        // The freed slot serves the hot candidate on the following tick.
        e.record_access(false, 2);
        e.record_access(false, 2);
        let plans = e.plan_tick(|_| true);
        assert!(
            plans.iter().any(|p| matches!(p, MigrationPlan::Promote { key: 2, .. })),
            "freed slot admits the overflowing candidate: {plans:?}"
        );
    }

    #[test]
    fn ineligible_pages_are_skipped() {
        let mut e = engine_with_pages(PolicyKind::Threshold, 8);
        e.record_access(false, 1);
        e.record_access(false, 1);
        assert!(e.plan_tick(|_| false).is_empty());
        assert_eq!(e.residence_of(1), Some(TierResidence::Slow));
    }

    #[test]
    fn abort_restores_residence_and_recycles_the_slot() {
        let mut e = engine_with_pages(PolicyKind::Threshold, 8);
        e.record_access(false, 1);
        e.record_access(false, 1);
        let plans = e.plan_tick(|_| true);
        assert_eq!(plans.len(), 1);
        e.abort(1);
        assert_eq!(e.residence_of(1), Some(TierResidence::Slow));
        assert_eq!(e.key_of_fast(0), None);
        assert_eq!(e.report().aborts, 1);
        // The freed slot is reused.
        e.record_access(false, 2);
        e.record_access(false, 2);
        let plans = e.plan_tick(|_| true);
        assert_eq!(plans, vec![MigrationPlan::Promote { key: 2, fast_lba: 0 }]);
    }

    #[test]
    fn hit_ratio_splits_early_and_late() {
        let mut e = engine_with_pages(PolicyKind::Threshold, 8);
        // Epoch 0: all slow. Epoch 1: all fast.
        e.record_access(false, 1);
        e.record_access(false, 1);
        for p in e.plan_tick(|_| true) {
            e.commit(p.key());
        }
        e.record_access(true, 0);
        e.record_access(true, 0);
        e.plan_tick(|_| true);
        let r = e.report();
        assert_eq!(r.fast_hit_ratio_early, 0.0);
        assert_eq!(r.fast_hit_ratio_late, 1.0);
        assert!(r.fast_hit_ratio > 0.0 && r.fast_hit_ratio < 1.0);
    }

    #[test]
    fn clean_engine_audits_clean() {
        use hwdp_sim::sanitize::AuditReport;
        let mut e = engine_with_pages(PolicyKind::Threshold, 16);
        e.record_access(false, 5);
        e.record_access(false, 5);
        for p in e.plan_tick(|_| true) {
            e.commit(p.key());
        }
        let mut report = AuditReport::new();
        e.sanitize(SanitizeLevel::Full, &mut report);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert!(report.checks > 0);
    }

    #[test]
    fn negative_torn_migration_detected() {
        // A torn (non-atomic) migration leaves a fast slot owned by a page
        // that never took ownership — the bijection check must fire.
        use hwdp_sim::sanitize::AuditReport;
        let mut e = engine_with_pages(PolicyKind::Threshold, 16);
        e.corrupt_fast_owner_for_test();
        let mut report = AuditReport::new();
        e.sanitize(SanitizeLevel::Full, &mut report);
        assert!(!report.is_clean());
        assert!(
            report.violations.iter().any(|v| v.invariant == "tier-fast-owner-unique"),
            "expected tier-fast-owner-unique, got {:?}",
            report.violations
        );
    }

    #[test]
    fn sanitize_off_is_free() {
        let e = engine_with_pages(PolicyKind::Threshold, 4);
        let mut report = hwdp_sim::sanitize::AuditReport::new();
        e.sanitize(SanitizeLevel::Off, &mut report);
        assert_eq!(report.checks, 0);
    }
}
