//! Pins the committed seed baseline: re-running the `scripts/ci.sh` smoke
//! campaign in-process must reproduce `baselines/BENCH_seed.json` exactly
//! (canonically — wall times zeroed, everything else byte-for-byte).
//!
//! This is the guard behind the BTreeMap conversions in the simulation
//! state: a container whose iteration order leaks into metrics, or any
//! other source of nondeterminism, shows up here as a diff against the
//! committed artifact rather than as a flaky 5 %-gate failure later.

use std::path::Path;

use hwdp_harness::progress::Counting;
use hwdp_harness::{execute_campaign, Artifact, Grid, Scenario};

fn seed_campaign() -> hwdp_harness::Campaign {
    // Mirrors scripts/ci.sh exactly: --scenarios fio,ycsb-c --modes
    // osdp,hwdp --threads-list 1,2 --ratios 2,4 --memory 256 --ops 150
    // --seed 42 (16 jobs).
    let scenarios: Vec<Scenario> =
        ["fio", "ycsb-c"].iter().map(|s| Scenario::parse(s).expect("known scenario")).collect();
    Grid::new("seed", 42)
        .scenarios(scenarios)
        .modes([hwdp_core::Mode::Osdp, hwdp_core::Mode::Hwdp])
        .threads([1, 2])
        .ratios([2.0, 4.0])
        .memory_frames(256)
        .ops(150)
        .expand()
}

#[test]
fn seed_campaign_reproduces_committed_baseline() {
    let baseline_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../baselines/BENCH_seed.json");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", baseline_path.display()));
    let baseline = Artifact::parse(&text).expect("committed baseline parses");

    let campaign = seed_campaign();
    assert_eq!(campaign.jobs.len(), 16, "the smoke campaign is 16 jobs");
    let fresh = execute_campaign(&campaign, 4, &mut Counting::default());

    assert_eq!(
        fresh.canonical_string(),
        baseline.canonical_string(),
        "seed campaign drifted from baselines/BENCH_seed.json; if the \
         change in simulated behaviour is intentional, refresh it with \
         scripts/ci.sh --refresh"
    );
}

#[test]
fn full_sanitize_reproduces_committed_baseline_byte_for_byte() {
    // The hwdp-audit parity contract: `SanitizeLevel::Full` is
    // observation-only, so the sanitized seed campaign must produce the
    // exact committed artifact — same metrics, no extra keys, no config
    // field — byte-identical to `baselines/BENCH_seed.json`.
    let baseline_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../baselines/BENCH_seed.json");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", baseline_path.display()));
    let baseline = Artifact::parse(&text).expect("committed baseline parses");

    let mut campaign = seed_campaign();
    for job in &mut campaign.jobs {
        job.sanitize = hwdp_sim::SanitizeLevel::Full;
    }
    let fresh = execute_campaign(&campaign, 4, &mut Counting::default());

    assert_eq!(
        fresh.canonical_string(),
        baseline.canonical_string(),
        "a Full-sanitized run perturbed the seed campaign artifact; \
         sanitizers must be observation-only (no events, no RNG draws, \
         no metric changes on clean runs)"
    );
}

#[test]
fn zero_rate_fault_plan_reproduces_committed_baseline_byte_for_byte() {
    // The fault-injection parity contract: a fault plan whose rates are
    // all zero installs no plan at all — no watchdog events, no retry
    // bookkeeping, no extra artifact keys. The seed campaign with a
    // zero-rate `faults` knob must be byte-identical to the committed
    // baseline captured before the fault layer existed.
    let baseline_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../baselines/BENCH_seed.json");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", baseline_path.display()));
    let baseline = Artifact::parse(&text).expect("committed baseline parses");

    let mut campaign = seed_campaign();
    for job in &mut campaign.jobs {
        job.faults = Some(hwdp_nvme::fault::FaultConfig::default());
        job.sanitize = hwdp_sim::SanitizeLevel::Full;
    }
    let fresh = execute_campaign(&campaign, 4, &mut Counting::default());

    assert_eq!(
        fresh.canonical_string(),
        baseline.canonical_string(),
        "a zero-rate fault plan perturbed the seed campaign artifact; \
         fault injection must be pay-as-you-go (no events, no RNG draws, \
         no metric or config changes when every rate is zero)"
    );
}

#[test]
fn zero_crash_plan_reproduces_committed_baseline_byte_for_byte() {
    // The crash-recovery parity contract: a disabled crash schedule
    // (`crash_at_us == 0`) schedules no crash events and exports no
    // `fault/` metrics, whatever the other crash knobs say — the seed
    // campaign stays byte-identical to the baseline captured before the
    // controller reset ladder existed.
    let baseline_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../baselines/BENCH_seed.json");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", baseline_path.display()));
    let baseline = Artifact::parse(&text).expect("committed baseline parses");

    let mut campaign = seed_campaign();
    for job in &mut campaign.jobs {
        job.faults = Some(hwdp_nvme::fault::FaultConfig {
            crash_at_us: 0,
            crash_count: 3,
            reset_latency_us: 777,
            ..hwdp_nvme::fault::FaultConfig::default()
        });
        job.sanitize = hwdp_sim::SanitizeLevel::Full;
    }
    let fresh = execute_campaign(&campaign, 4, &mut Counting::default());

    assert_eq!(
        fresh.canonical_string(),
        baseline.canonical_string(),
        "a zero-crash fault plan perturbed the seed campaign artifact; \
         crash injection must be pay-as-you-go (no crash events, no reset \
         bookkeeping, no metric changes while crash_at_us is zero)"
    );
}

#[test]
fn explicit_repeats_one_reproduces_committed_baseline_byte_for_byte() {
    // The statistics parity contract: `repeats = 1` (and the normalized
    // `repeats = 0`) is a plain single run — repeat 0 is anchored to the
    // job seed itself, no aggregation pass runs, no /stddev or /ci95 keys
    // appear, and the spec serializes without a `repeats` field. The seed
    // campaign with the knob explicitly set must be byte-identical to the
    // committed baseline.
    let baseline_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../baselines/BENCH_seed.json");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", baseline_path.display()));
    let baseline = Artifact::parse(&text).expect("committed baseline parses");

    let mut campaign = seed_campaign();
    for job in &mut campaign.jobs {
        job.repeats = 1;
    }
    let fresh = execute_campaign(&campaign, 4, &mut Counting::default());

    assert_eq!(
        fresh.canonical_string(),
        baseline.canonical_string(),
        "a repeats=1 sweep perturbed the seed campaign artifact; the \
         repeats knob must be pay-as-you-go (single runs stay byte-identical \
         to runs made before the knob existed)"
    );
}

#[test]
fn single_thread_jobs_carry_no_per_thread_or_spread_keys() {
    // The committed baseline's single-thread, repeats=1 records must stay
    // exactly as they were before per-thread export existed: no
    // `thread/<i>/` metrics, no `threads` array, no statistics keys.
    let baseline_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../baselines/BENCH_seed.json");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", baseline_path.display()));
    let baseline = Artifact::parse(&text).expect("committed baseline parses");

    for job in &baseline.jobs {
        assert!(
            job.metrics.iter().all(|(k, _)| !k.contains("/stddev") && !k.contains("/ci95")),
            "repeats=1 job {} grew statistics keys",
            job.spec.label()
        );
        if job.spec.threads == 1 {
            assert!(
                job.metrics.iter().all(|(k, _)| !k.starts_with("thread/")),
                "single-thread job {} grew per-thread metrics",
                job.spec.label()
            );
        } else {
            assert!(
                job.metrics.iter().any(|(k, _)| k.starts_with("thread/")),
                "multi-thread job {} should carry per-thread metrics",
                job.spec.label()
            );
        }
    }
}

#[test]
fn seed_campaign_is_worker_count_invariant() {
    let campaign = seed_campaign();
    let one = execute_campaign(&campaign, 1, &mut Counting::default());
    let four = execute_campaign(&campaign, 4, &mut Counting::default());
    assert_eq!(one.canonical_string(), four.canonical_string());
}

#[test]
fn both_scheduler_backends_reproduce_committed_baseline_byte_for_byte() {
    // The scheduler-parity contract: the timing wheel (the default) and
    // the binary heap obey the same `(time, EventId)` total order, so the
    // whole seed campaign — every event interleaving, every metric — is
    // byte-identical under either backend, and identical to the committed
    // baseline captured under the heap. The `HWDP_SCHEDULER` knob is
    // therefore pure A/B selection, never result steering.
    //
    // Setting the env var here is safe against the other tests in this
    // binary precisely *because* of this contract: whichever backend a
    // concurrently-running parity test picks up, its artifact is the same.
    let baseline_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../baselines/BENCH_seed.json");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", baseline_path.display()));
    let baseline = Artifact::parse(&text).expect("committed baseline parses");

    let campaign = seed_campaign();
    let mut artifacts = Vec::new();
    for backend in ["wheel", "heap"] {
        std::env::set_var("HWDP_SCHEDULER", backend);
        artifacts.push((backend, execute_campaign(&campaign, 4, &mut Counting::default())));
    }
    std::env::remove_var("HWDP_SCHEDULER");

    for (backend, fresh) in &artifacts {
        assert_eq!(
            fresh.canonical_string(),
            baseline.canonical_string(),
            "the {backend} scheduler backend drifted from \
             baselines/BENCH_seed.json; both backends must honour the \
             (time, EventId) ordering contract exactly"
        );
    }
}
