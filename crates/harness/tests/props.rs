//! Property-based tests of the harness seeding and statistics layers.

use hwdp_harness::{job_seed, repeat_seed, summarize, t95};
use proptest::prelude::*;

/// Maps a raw draw in `[0, 2·half)` onto an integer-valued f64 in
/// `[-half, half)`: integer samples keep sums exact, so closed-form
/// comparisons below are bit-level, not approximate.
fn centered(v: u64, half: u64) -> f64 {
    v as f64 - half as f64
}

proptest! {
    /// Repeat 0 is the job seed itself: `repeats = 1` campaigns stay
    /// byte-identical to plain runs for every possible seed.
    #[test]
    fn repeat_zero_anchors_to_job_seed(seed: u64) {
        prop_assert_eq!(repeat_seed(seed, 0), seed);
    }

    /// Per-repeat seeds are pairwise distinct within any realistic repeat
    /// count, for any job seed.
    #[test]
    fn repeat_seeds_pairwise_distinct(seed: u64, k in 2u32..64) {
        let seeds: Vec<u64> = (0..k).map(|i| repeat_seed(seed, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), seeds.len(), "repeat seeds collided: {:?}", seeds);
    }

    /// `repeat_seed` is a pure function of `(seed, k)`: evaluating the
    /// repeats in any order (here: reversed) yields the same values, so a
    /// resumed or partially parallel campaign reproduces the same runs.
    #[test]
    fn repeat_seeds_order_independent(seed: u64, k in 1u32..64) {
        let forward: Vec<u64> = (0..k).map(|i| repeat_seed(seed, i)).collect();
        let mut backward: Vec<u64> = (0..k).rev().map(|i| repeat_seed(seed, i)).collect();
        backward.reverse();
        prop_assert_eq!(forward, backward);
    }

    /// The repeat tree of a derived job seed stays disjoint from the
    /// job-seed tree of the same campaign: repeats never replay a sibling
    /// job's run.
    #[test]
    fn repeat_tree_disjoint_from_job_tree(campaign: u64, idx in 0u64..32, k in 1u32..32) {
        let job = job_seed(campaign, idx);
        let repeat = repeat_seed(job, k);
        for other in 0..32u64 {
            prop_assert_ne!(repeat, job_seed(campaign, other));
        }
    }

    /// Mean lies within the sample range; spread measures are
    /// non-negative and the interval brackets the mean.
    #[test]
    fn summary_basic_invariants(raw in prop::collection::vec(0u64..2_000_000, 1..16)) {
        let sample: Vec<f64> = raw.iter().map(|&v| centered(v, 1_000_000)).collect();
        let s = summarize(&sample);
        let min = sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s.mean >= min && s.mean <= max);
        prop_assert!(s.stddev >= 0.0 && s.ci95_half >= 0.0);
        let (lo, hi) = s.interval();
        prop_assert!(lo <= s.mean && s.mean <= hi);
    }

    /// The reported CI half-width matches the closed form
    /// `t95(n−1) · sd / √n` exactly.
    #[test]
    fn ci_matches_closed_form(raw in prop::collection::vec(0u64..2_000, 2..12)) {
        let sample: Vec<f64> = raw.iter().map(|&v| centered(v, 1_000)).collect();
        let s = summarize(&sample);
        let n = sample.len();
        prop_assert_eq!(s.ci95_half, t95(n - 1) * s.stddev / (n as f64).sqrt());
    }

    /// Closed-form check against the two-point distribution {a, b}:
    /// mean = (a+b)/2, sd = |a−b|/2 · √2, CI = t95(1)·sd/√2.
    #[test]
    fn two_point_distribution_closed_form(ra in 0u64..2_000, rb in 0u64..2_000) {
        let (a, b) = (centered(ra, 1_000), centered(rb, 1_000));
        let s = summarize(&[a, b]);
        prop_assert_eq!(s.mean, (a + b) / 2.0);
        let sd = ((a - b) / 2.0).abs() * 2.0_f64.sqrt();
        prop_assert!((s.stddev - sd).abs() <= 1e-9 * (1.0 + sd));
        let ci = t95(1) * sd / 2.0_f64.sqrt();
        prop_assert!((s.ci95_half - ci).abs() <= 1e-9 * (1.0 + ci));
    }

    /// Constant samples have exactly zero spread at any size.
    #[test]
    fn constant_sample_zero_spread(v in 0u64..2_000_000, n in 1usize..16) {
        let x = centered(v, 1_000_000);
        let s = summarize(&vec![x; n]);
        prop_assert_eq!(s.mean, x);
        prop_assert_eq!(s.stddev, 0.0);
        prop_assert_eq!(s.ci95_half, 0.0);
    }

    /// Shifting every sample by a constant shifts the mean and leaves the
    /// spread (nearly) unchanged.
    #[test]
    fn shift_moves_mean_not_spread(
        raw in prop::collection::vec(0u64..2_000, 2..12),
        rshift in 0u64..2_000,
    ) {
        let base: Vec<f64> = raw.iter().map(|&v| centered(v, 1_000)).collect();
        let shift = centered(rshift, 1_000);
        let shifted: Vec<f64> = base.iter().map(|v| v + shift).collect();
        let (s0, s1) = (summarize(&base), summarize(&shifted));
        prop_assert!((s1.mean - (s0.mean + shift)).abs() <= 1e-9 * (1.0 + shift.abs()));
        prop_assert!((s1.stddev - s0.stddev).abs() <= 1e-9 * (1.0 + s0.stddev));
    }

    /// Integer-valued samples summarize order-independently: their sum is
    /// exact in any order, so the mean is bit-identical; the spread (whose
    /// squared deviations round) agrees to rounding error.
    #[test]
    fn integer_samples_order_invariant(raw in prop::collection::vec(0u64..200_000, 2..12)) {
        let forward: Vec<f64> = raw.iter().map(|&v| centered(v, 100_000)).collect();
        let mut backward = forward.clone();
        backward.reverse();
        let (a, b) = (summarize(&forward), summarize(&backward));
        prop_assert_eq!(a.mean, b.mean);
        prop_assert!((a.stddev - b.stddev).abs() <= 1e-9 * (1.0 + a.stddev));
        prop_assert!((a.ci95_half - b.ci95_half).abs() <= 1e-9 * (1.0 + a.ci95_half));
    }
}
