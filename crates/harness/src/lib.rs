//! # hwdp-harness — parallel experiment orchestration
//!
//! The campaign layer over the `hwdp-core` simulator: expand scenario ×
//! configuration grids into independent jobs, run them across OS threads,
//! sink results into machine-readable `BENCH_<campaign>.json` artifacts,
//! and gate changes against stored baselines.
//!
//! * [`spec`] — [`Scenario`], [`JobSpec`], [`Campaign`], and the [`Grid`]
//!   builder that expands axis lists into a job list. Per-job seeds derive
//!   from the campaign seed and job index via SplitMix64 ([`seed`]), so an
//!   identical campaign produces identical results regardless of worker
//!   count or scheduling order.
//! * [`executor`] — a `std::thread` pool draining a shared job queue with
//!   panic isolation (a panicking job is reported as failed, not a harness
//!   crash), per-job wall-time capture, and live progress callbacks.
//! * [`runner`] — maps a [`JobSpec`] onto a concrete simulator run and
//!   flattens the resulting metrics (via
//!   `hwdp_core::RunResult::export_metrics`).
//! * [`json`] — a dependency-free JSON value model, writer, and parser.
//! * [`artifact`] — the `BENCH_*.json` schema: per-job config, metrics,
//!   status, and wall time; byte-stable except for wall-time fields.
//! * [`compare`] — the baseline comparator: per-metric deltas with
//!   configurable thresholds and direction-aware regression verdicts;
//!   jobs run with `repeats > 1` gate on 95 % confidence-interval overlap
//!   instead of raw deltas.
//! * [`stats`] — mean / sample-stddev / Student-t 95 % CI summaries for
//!   repeated jobs.
//!
//! # Quickstart
//!
//! ```
//! use hwdp_harness::{Grid, Scenario, execute_campaign, progress::Silent};
//! use hwdp_core::Mode;
//!
//! let campaign = Grid::new("demo", 42)
//!     .scenarios([Scenario::FioRand])
//!     .modes([Mode::Osdp, Mode::Hwdp])
//!     .threads([1])
//!     .ratios([2.0])
//!     .memory_frames(128)
//!     .ops(40)
//!     .expand();
//! let artifact = execute_campaign(&campaign, 2, &mut Silent);
//! assert_eq!(artifact.jobs.len(), 2);
//! assert!(artifact.jobs.iter().all(|j| j.is_ok()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod chaos;
pub mod compare;
pub mod executor;
pub mod json;
pub mod progress;
pub mod runner;
pub mod seed;
pub mod spec;
pub mod stats;

pub use artifact::{Artifact, JobRecord, JobStatus};
pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use compare::{CompareReport, Thresholds};
pub use executor::{execute, execute_campaign, execute_campaign_resume, JobOutcome};
pub use json::Json;
pub use progress::Progress;
pub use seed::{job_seed, repeat_seed};
pub use hwdp_tier::PolicyKind;
pub use spec::{Campaign, DeviceKind, Grid, JobSpec, Scenario, SmtPartner, TierSpec};
pub use stats::{summarize, t95, Summary};
