//! Maps a [`JobSpec`] onto a concrete simulator run.
//!
//! Workload setup mirrors `hwdp-bench`'s scenario scaffolding exactly
//! (thread-RNG derivation, IPC settings, KV capacity headroom), so a
//! harness job with `fixed_seed` campaign seeding reproduces the historic
//! figure numbers bit for bit.

use crate::spec::{JobSpec, Scenario};
use hwdp_core::anatomy::{hwdp_anatomy, osdp_anatomy, swonly_anatomy};
use hwdp_core::{Mode, RunResult, SystemBuilder};
use hwdp_os::costs::{OsdpCosts, SwOnlyCosts};
use hwdp_sim::rng::Prng;
use hwdp_sim::time::Duration;
use hwdp_smu::SmuTiming;
use hwdp_workloads::{
    DbBenchReadRandom, FioRandRead, MiniDb, ScratchChurn, Workload, Ycsb,
};

/// Runs one job to completion and returns its flattened metrics.
///
/// Deterministic: the same spec always yields the same metric values
/// (virtual time only; no wall-clock inputs).
pub fn run_job(spec: &JobSpec) -> Vec<(String, f64)> {
    match spec.scenario {
        Scenario::Anatomy => anatomy_metrics(spec),
        _ => {
            let result = simulate(spec);
            let mut metrics: Vec<(String, f64)> = result
                .export_metrics()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            // Per-invariant violation counts, only when something fired:
            // clean sanitized runs produce byte-identical artifacts to
            // unsanitized ones (the seed-parity gate depends on this).
            for ((layer, invariant), count) in result.audit.by_invariant() {
                metrics.push((format!("sanitize/{layer}/{invariant}"), count as f64));
            }
            metrics
        }
    }
}

/// Builds the system described by `spec` and runs its workload.
pub fn simulate(spec: &JobSpec) -> RunResult {
    let mut builder = SystemBuilder::new(spec.mode)
        .memory_frames(spec.memory_frames)
        .device(spec.device.profile())
        .kpted_period(Duration::from_micros(spec.kpted_period_us))
        .kpoold(spec.kpoold_enabled)
        .per_core_free_queues(spec.per_core_free_queues)
        .readahead_pages(spec.readahead_pages)
        .smu_prefetch_pages(spec.smu_prefetch_pages)
        .sanitize(spec.sanitize)
        .seed(spec.seed);
    if let Some(entries) = spec.pmshr_entries {
        builder = builder.pmshr_entries(entries);
    }
    if let Some(depth) = spec.free_queue_depth {
        builder = builder.free_queue_depth(depth);
    }
    if let Some(us) = spec.kpoold_period_us {
        builder = builder.tweak(|cfg| cfg.kpoold_period = Duration::from_micros(us));
    }
    if let Some(us) = spec.long_io_timeout_us {
        builder = builder.long_io_timeout(Duration::from_micros(us));
    }
    if let Some(faults) = spec.effective_faults() {
        builder = builder.faults(faults);
    }
    let mut sys = builder.build();
    let time_cap = Duration::from_millis(spec.time_cap_ms);
    let pages = spec.dataset_pages();

    match spec.scenario {
        Scenario::FioRand => {
            let file = sys.create_pattern_file("fio-data", pages);
            let region = sys.map_file(file);
            for i in 0..spec.threads {
                let rng = Prng::seed_from(spec.seed ^ (0xF10 + i as u64));
                sys.spawn(Box::new(FioRandRead::new(region, pages, spec.ops, rng)), 1.8, None);
            }
        }
        Scenario::DbBench | Scenario::Ycsb(_) => {
            let records = pages;
            let capacity = records + records / 4; // headroom for inserts (D/E)
            let file = sys.create_kv_file("db", records, capacity);
            let region = sys.map_file(file);
            for i in 0..spec.threads {
                let db = MiniDb::new(region, records, capacity);
                let rng = Prng::seed_from(spec.seed ^ (0x2B + i as u64));
                let workload: Box<dyn Workload> = match spec.scenario {
                    Scenario::DbBench => Box::new(DbBenchReadRandom::new(db, spec.ops, rng)),
                    Scenario::Ycsb(kind) => Box::new(Ycsb::new(kind, db, spec.ops, rng)),
                    _ => unreachable!(),
                };
                sys.spawn(workload, 1.6, None);
            }
        }
        Scenario::Anon => {
            let region = sys.map_anon(pages);
            for i in 0..spec.threads {
                let rng = Prng::seed_from(spec.seed ^ (0xA40 + i as u64));
                sys.spawn(Box::new(ScratchChurn::new(region, pages, spec.ops, rng)), 1.6, None);
            }
        }
        Scenario::Anatomy => unreachable!("anatomy jobs are closed-form"),
    }
    sys.run(time_cap)
}

/// Closed-form Fig. 10/17 anatomy metrics (no event simulation).
fn anatomy_metrics(spec: &JobSpec) -> Vec<(String, f64)> {
    let device = spec.device.profile();
    let a = match spec.mode {
        Mode::Osdp => osdp_anatomy(&OsdpCosts::paper_default(), &device),
        Mode::Hwdp => hwdp_anatomy(&SmuTiming::paper_default(), &device),
        Mode::SwOnly => swonly_anatomy(&SwOnlyCosts::paper_default(), &device),
    };
    vec![
        ("anatomy_total_ns".into(), a.total().as_nanos_f64()),
        ("anatomy_overhead_ns".into(), a.overhead().as_nanos_f64()),
        ("anatomy_before_device_ns".into(), a.before_device().as_nanos_f64()),
        ("anatomy_after_device_ns".into(), a.after_device().as_nanos_f64()),
        ("anatomy_overhead_frac_of_device".into(), a.overhead_fraction_of_device()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceKind;
    use hwdp_core::Mode;

    fn quick(scenario: Scenario, mode: Mode) -> JobSpec {
        let mut spec = JobSpec::new(scenario, mode, 0xD15C);
        spec.memory_frames = 128;
        spec.ops = 60;
        spec
    }

    #[test]
    fn fio_job_is_deterministic() {
        let spec = quick(Scenario::FioRand, Mode::Hwdp);
        let a = run_job(&spec);
        let b = run_job(&spec);
        assert_eq!(a, b);
        let ops = a.iter().find(|(k, _)| k == "ops").unwrap().1;
        assert_eq!(ops, 60.0);
        let fails = a.iter().find(|(k, _)| k == "verify_failures").unwrap().1;
        assert_eq!(fails, 0.0);
    }

    #[test]
    fn modes_produce_different_metrics() {
        let hw = run_job(&quick(Scenario::FioRand, Mode::Hwdp));
        let os = run_job(&quick(Scenario::FioRand, Mode::Osdp));
        let lat = |m: &[(String, f64)]| {
            m.iter().find(|(k, _)| k == "miss_lat_mean_ns").unwrap().1
        };
        assert!(lat(&hw) < lat(&os), "HWDP should cut miss latency");
    }

    #[test]
    fn kv_and_anon_scenarios_run() {
        for scenario in [Scenario::DbBench, Scenario::Anon] {
            let m = run_job(&quick(scenario, Mode::Hwdp));
            let ops = m.iter().find(|(k, _)| k == "ops").unwrap().1;
            assert!(ops > 0.0, "{}", scenario.name());
        }
    }

    #[test]
    fn full_sanitize_is_observation_only() {
        // The parity contract at job level: identical metrics whether the
        // sanitizer runs or not, and no sanitize/ metrics on a clean run.
        let spec = quick(Scenario::FioRand, Mode::Hwdp);
        let mut sanitized = spec;
        sanitized.sanitize = hwdp_sim::SanitizeLevel::Full;
        let plain = run_job(&spec);
        let audited = run_job(&sanitized);
        assert_eq!(plain, audited);
        assert!(audited.iter().all(|(k, _)| !k.starts_with("sanitize")));
    }

    #[test]
    fn anatomy_is_closed_form() {
        let mut spec = quick(Scenario::Anatomy, Mode::Hwdp);
        spec.device = DeviceKind::OptanePmm;
        let m = run_job(&spec);
        assert!(m.iter().any(|(k, _)| k == "anatomy_total_ns"));
        let hw_total = m[0].1;
        spec.mode = Mode::Osdp;
        let os_total = run_job(&spec)[0].1;
        assert!(hw_total < os_total, "HWDP anatomy must beat OSDP");
    }

    #[test]
    fn knob_overrides_apply() {
        let mut spec = quick(Scenario::FioRand, Mode::Hwdp);
        spec.pmshr_entries = Some(2);
        spec.threads = 4;
        let m = run_job(&spec);
        let stalls = m.iter().find(|(k, _)| k == "pmshr_stalls").unwrap().1;
        let baseline = run_job(&quick(Scenario::FioRand, Mode::Hwdp));
        let base_stalls = baseline.iter().find(|(k, _)| k == "pmshr_stalls").unwrap().1;
        assert!(stalls >= base_stalls, "tiny PMSHR should not reduce stalls");
    }
}
