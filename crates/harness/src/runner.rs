//! Maps a [`JobSpec`] onto a concrete simulator run.
//!
//! Workload setup mirrors `hwdp-bench`'s scenario scaffolding exactly
//! (thread-RNG derivation, IPC settings, KV capacity headroom), so a
//! harness job with `fixed_seed` campaign seeding reproduces the historic
//! figure numbers bit for bit.

use crate::seed::repeat_seed;
use crate::spec::{JobSpec, Scenario};
use crate::stats::summarize;
use hwdp_core::anatomy::{hwdp_anatomy, osdp_anatomy, swonly_anatomy};
use hwdp_core::{HwId, Mode, RunResult, SystemBuilder};
use hwdp_os::costs::{OsdpCosts, SwOnlyCosts};
use hwdp_sim::rng::Prng;
use hwdp_sim::time::Duration;
use hwdp_sim::SchedulerKind;
use hwdp_smu::SmuTiming;
use hwdp_workloads::{
    DbBenchReadRandom, FioRandRead, MiniDb, ScratchChurn, SpecKernel, Workload, Ycsb,
};

/// Runs one job to completion and returns its flattened metrics.
///
/// Deterministic: the same spec always yields the same metric values
/// (virtual time only; no wall-clock inputs).
///
/// With `repeats > 1` the job runs once per derived repeat seed and every
/// metric `m` is reported as three keys: `m` (mean), `m/stddev`, and
/// `m/ci95` (Student-t 95 % confidence half-width).
pub fn run_job(spec: &JobSpec) -> Vec<(String, f64)> {
    let k = spec.effective_repeats();
    if k == 1 {
        return run_once(spec);
    }
    let runs: Vec<Vec<(String, f64)>> = (0..k)
        .map(|i| {
            let mut s = *spec;
            s.seed = repeat_seed(spec.seed, i);
            run_once(&s)
        })
        .collect();
    aggregate_repeats(&runs)
}

/// Whether the opt-in scheduler-throughput export is enabled
/// (`HWDP_THROUGHPUT=1`). Off by default: the export includes a
/// wall-clock rate, so it must never leak into baseline artifacts.
fn throughput_enabled() -> bool {
    std::env::var_os("HWDP_THROUGHPUT").is_some_and(|v| v != "0" && !v.is_empty())
}

/// The `HWDP_SCHEDULER` env knob (`wheel` / `heap`), if set to a valid
/// backend name. Observation-free: either backend produces byte-identical
/// artifacts (the scheduler-parity test in `tests/seed_parity.rs` pins
/// this), so the knob exists for differential A/B runs and throughput
/// benchmarking, not for result steering.
fn scheduler_override() -> Option<SchedulerKind> {
    std::env::var("HWDP_SCHEDULER").ok().and_then(|s| SchedulerKind::parse(&s))
}

/// Opt-in scheduler-throughput metrics: the event count is deterministic
/// (identical under both backends by the ordering contract), while
/// `events_per_sec` divides it by measured wall time and therefore varies
/// run to run — `hwdp compare` treats it as advisory, never gating.
fn export_metrics(events_processed: u64, wall_secs: f64) -> Vec<(&'static str, f64)> {
    let rate = if wall_secs > 0.0 { events_processed as f64 / wall_secs } else { 0.0 };
    vec![
        ("events_processed", events_processed as f64),
        ("events_per_sec", rate),
    ]
}

/// One plain simulator run for `spec` (ignoring its repeat count).
fn run_once(spec: &JobSpec) -> Vec<(String, f64)> {
    match spec.scenario {
        Scenario::Anatomy => anatomy_metrics(spec),
        _ => {
            let started = throughput_enabled().then(std::time::Instant::now);
            let result = simulate(spec);
            let mut metrics: Vec<(String, f64)> = result
                .export_metrics()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            // Per-invariant violation counts, only when something fired:
            // clean sanitized runs produce byte-identical artifacts to
            // unsanitized ones (the seed-parity gate depends on this).
            for ((layer, invariant), count) in result.audit.by_invariant() {
                metrics.push((format!("sanitize/{layer}/{invariant}"), count as f64));
            }
            // Per-thread reports, only for jobs that actually ran more
            // than one thread: single-thread artifacts stay byte-identical
            // to baselines captured before per-thread export existed.
            if result.threads.len() > 1 {
                for (i, t) in result.threads.iter().enumerate() {
                    for (name, value) in t.export_metrics() {
                        metrics.push((format!("thread/{i}/{name}"), value));
                    }
                }
            }
            if let Some(started) = started {
                let wall = started.elapsed().as_secs_f64();
                metrics.extend(
                    export_metrics(result.events_processed, wall)
                        .into_iter()
                        .map(|(name, value)| (name.to_string(), value)),
                );
            }
            metrics
        }
    }
}

/// Folds per-repeat metric vectors into mean / stddev / 95 % CI triples.
///
/// Key order is first-appearance order across runs (run 0's order, with
/// keys that only materialize in later repeats — conditional exports like
/// fault-recovery counters — appended); a key missing from some repeats is
/// summarized over the repeats that produced it.
fn aggregate_repeats(runs: &[Vec<(String, f64)>]) -> Vec<(String, f64)> {
    let mut order: Vec<&String> = Vec::new();
    for run in runs {
        for (k, _) in run {
            if !order.contains(&k) {
                order.push(k);
            }
        }
    }
    let mut out = Vec::with_capacity(order.len() * 3);
    for key in order {
        let values: Vec<f64> = runs
            .iter()
            .filter_map(|run| run.iter().find(|(k, _)| k == key).map(|(_, v)| *v))
            .collect();
        let s = summarize(&values);
        out.push((key.clone(), s.mean));
        out.push((format!("{key}/stddev"), s.stddev));
        out.push((format!("{key}/ci95"), s.ci95_half));
    }
    out
}

/// Builds the system described by `spec` and runs its workload.
pub fn simulate(spec: &JobSpec) -> RunResult {
    simulate_with_digest(spec).0
}

/// Like [`simulate`], but also returns the end-of-run content digest
/// (`System::content_digest`) — the user-visible storage state the chaos
/// oracle compares between a faulted run and its fault-free twin.
pub fn simulate_with_digest(spec: &JobSpec) -> (RunResult, u64) {
    let mut builder = SystemBuilder::new(spec.mode)
        .memory_frames(spec.memory_frames)
        .device(spec.device.profile())
        .kpted_period(Duration::from_micros(spec.kpted_period_us))
        .kpoold(spec.kpoold_enabled)
        .per_core_free_queues(spec.per_core_free_queues)
        .readahead_pages(spec.readahead_pages)
        .smu_prefetch_pages(spec.smu_prefetch_pages)
        .sanitize(spec.sanitize)
        .seed(spec.seed);
    if let Some(kind) = scheduler_override() {
        // A/B backend selection for differential runs and benchmarks;
        // byte-identical either way by the scheduler ordering contract.
        builder = builder.tweak(move |cfg| cfg.scheduler = kind);
    }
    if let Some(entries) = spec.pmshr_entries {
        builder = builder.pmshr_entries(entries);
    }
    if let Some(depth) = spec.free_queue_depth {
        builder = builder.free_queue_depth(depth);
    }
    if let Some(us) = spec.kpoold_period_us {
        builder = builder.tweak(|cfg| cfg.kpoold_period = Duration::from_micros(us));
    }
    if let Some(us) = spec.long_io_timeout_us {
        builder = builder.long_io_timeout(Duration::from_micros(us));
    }
    if let Some(faults) = spec.effective_faults() {
        builder = builder.faults(faults);
    }
    if let Some(tiers) = spec.tiers {
        builder = builder.tiers(tiers.to_config());
    }
    if matches!(spec.scenario, Scenario::SmtCorun(_)) {
        // The Fig. 16 co-location squeezes the workload threads plus the
        // SPEC partner onto as few physical cores as they need — one core
        // (two SMT contexts) for the canonical single-FIO-thread co-run.
        let contexts = spec.pin.unwrap_or(0) + spec.threads + 1;
        builder = builder.tweak(move |cfg| {
            cfg.physical_cores = ((contexts + cfg.smt_ways - 1) / cfg.smt_ways).max(1);
        });
    } else if let Some(base) = spec.pin {
        // Pinning places thread i on context `base + i`; grow the core
        // count when the pinned span runs past the default topology.
        let contexts = base + spec.threads;
        builder = builder.tweak(move |cfg| {
            let needed = (contexts + cfg.smt_ways - 1) / cfg.smt_ways;
            cfg.physical_cores = cfg.physical_cores.max(needed);
        });
    }
    let mut sys = builder.build();
    let time_cap = Duration::from_millis(spec.time_cap_ms);
    let pages = spec.dataset_pages();
    // Hardware-context pinning: workload thread i goes on context
    // `pin + i`, a co-run partner right after the workload threads.
    let pin_for = |i: usize| spec.pin.map(|base| HwId(base + i));

    match spec.scenario {
        Scenario::FioRand => {
            let file = sys.create_pattern_file("fio-data", pages);
            let region = sys.map_file(file);
            for i in 0..spec.threads {
                let rng = Prng::seed_from(spec.seed ^ (0xF10 + i as u64));
                sys.spawn(
                    Box::new(FioRandRead::new(region, pages, spec.ops, rng)),
                    1.8,
                    pin_for(i),
                );
            }
        }
        Scenario::DbBench | Scenario::Ycsb(_) => {
            let records = pages;
            let capacity = records + records / 4; // headroom for inserts (D/E)
            let file = sys.create_kv_file("db", records, capacity);
            let region = sys.map_file(file);
            for i in 0..spec.threads {
                let db = MiniDb::new(region, records, capacity);
                let rng = Prng::seed_from(spec.seed ^ (0x2B + i as u64));
                let workload: Box<dyn Workload> = match spec.scenario {
                    Scenario::DbBench => Box::new(DbBenchReadRandom::new(db, spec.ops, rng)),
                    Scenario::Ycsb(kind) => Box::new(Ycsb::new(kind, db, spec.ops, rng)),
                    _ => unreachable!(),
                };
                sys.spawn(workload, 1.6, pin_for(i));
            }
        }
        Scenario::Anon => {
            let region = sys.map_anon(pages);
            for i in 0..spec.threads {
                let rng = Prng::seed_from(spec.seed ^ (0xA40 + i as u64));
                sys.spawn(
                    Box::new(ScratchChurn::new(region, pages, spec.ops, rng)),
                    1.6,
                    pin_for(i),
                );
            }
        }
        Scenario::SmtCorun(partner) => {
            // Mirrors hwdp-bench's run_smt_corun: FIO threads first (the
            // bespoke loop's rng seed is `seed ^ 0x516`, i.e. thread 0
            // here), then one SPEC kernel on the next hardware context.
            let file = sys.create_pattern_file("fio-data", pages);
            let region = sys.map_file(file);
            for i in 0..spec.threads {
                let rng = Prng::seed_from(spec.seed ^ (0x516 + i as u64));
                sys.spawn(
                    Box::new(FioRandRead::new(region, pages, spec.ops, rng)),
                    1.8,
                    pin_for(i),
                );
            }
            let profile = partner.profile();
            sys.spawn(Box::new(SpecKernel::new(profile)), profile.base_ipc, pin_for(spec.threads));
        }
        Scenario::Anatomy => unreachable!("anatomy jobs are closed-form"),
    }
    let result = sys.run(time_cap);
    let digest = sys.content_digest();
    (result, digest)
}

/// Closed-form Fig. 10/17 anatomy metrics (no event simulation).
fn anatomy_metrics(spec: &JobSpec) -> Vec<(String, f64)> {
    let device = spec.device.profile();
    let a = match spec.mode {
        Mode::Osdp => osdp_anatomy(&OsdpCosts::paper_default(), &device),
        Mode::Hwdp => hwdp_anatomy(&SmuTiming::paper_default(), &device),
        Mode::SwOnly => swonly_anatomy(&SwOnlyCosts::paper_default(), &device),
    };
    vec![
        ("anatomy_total_ns".into(), a.total().as_nanos_f64()),
        ("anatomy_overhead_ns".into(), a.overhead().as_nanos_f64()),
        ("anatomy_before_device_ns".into(), a.before_device().as_nanos_f64()),
        ("anatomy_after_device_ns".into(), a.after_device().as_nanos_f64()),
        ("anatomy_overhead_frac_of_device".into(), a.overhead_fraction_of_device()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceKind;
    use hwdp_core::Mode;

    fn quick(scenario: Scenario, mode: Mode) -> JobSpec {
        let mut spec = JobSpec::new(scenario, mode, 0xD15C);
        spec.memory_frames = 128;
        spec.ops = 60;
        spec
    }

    #[test]
    fn fio_job_is_deterministic() {
        let spec = quick(Scenario::FioRand, Mode::Hwdp);
        let a = run_job(&spec);
        let b = run_job(&spec);
        assert_eq!(a, b);
        let ops = a.iter().find(|(k, _)| k == "ops").unwrap().1;
        assert_eq!(ops, 60.0);
        let fails = a.iter().find(|(k, _)| k == "verify_failures").unwrap().1;
        assert_eq!(fails, 0.0);
    }

    #[test]
    fn modes_produce_different_metrics() {
        let hw = run_job(&quick(Scenario::FioRand, Mode::Hwdp));
        let os = run_job(&quick(Scenario::FioRand, Mode::Osdp));
        let lat = |m: &[(String, f64)]| {
            m.iter().find(|(k, _)| k == "miss_lat_mean_ns").unwrap().1
        };
        assert!(lat(&hw) < lat(&os), "HWDP should cut miss latency");
    }

    #[test]
    fn kv_and_anon_scenarios_run() {
        for scenario in [Scenario::DbBench, Scenario::Anon] {
            let m = run_job(&quick(scenario, Mode::Hwdp));
            let ops = m.iter().find(|(k, _)| k == "ops").unwrap().1;
            assert!(ops > 0.0, "{}", scenario.name());
        }
    }

    #[test]
    fn full_sanitize_is_observation_only() {
        // The parity contract at job level: identical metrics whether the
        // sanitizer runs or not, and no sanitize/ metrics on a clean run.
        let spec = quick(Scenario::FioRand, Mode::Hwdp);
        let mut sanitized = spec;
        sanitized.sanitize = hwdp_sim::SanitizeLevel::Full;
        let plain = run_job(&spec);
        let audited = run_job(&sanitized);
        assert_eq!(plain, audited);
        assert!(audited.iter().all(|(k, _)| !k.starts_with("sanitize")));
    }

    #[test]
    fn single_thread_jobs_export_no_per_thread_metrics() {
        // The baseline byte-identity contract: per-thread keys appear only
        // when a job actually ran more than one thread.
        let m = run_job(&quick(Scenario::FioRand, Mode::Hwdp));
        assert!(m.iter().all(|(k, _)| !k.starts_with("thread/")));
    }

    #[test]
    fn multi_thread_jobs_export_per_thread_metrics() {
        let mut spec = quick(Scenario::FioRand, Mode::Hwdp);
        spec.threads = 2;
        let m = run_job(&spec);
        for i in 0..2 {
            let ipc = m.iter().find(|(k, _)| k == &format!("thread/{i}/user_ipc"));
            assert!(ipc.is_some(), "missing thread/{i}/user_ipc");
        }
        let sum: f64 = (0..2)
            .map(|i| {
                m.iter().find(|(k, _)| k == &format!("thread/{i}/ops")).map_or(0.0, |(_, v)| *v)
            })
            .sum();
        let total = m.iter().find(|(k, _)| k == "ops").map_or(0.0, |(_, v)| *v);
        assert_eq!(sum, total, "per-thread ops must sum to the aggregate");
    }

    #[test]
    fn pinned_threads_report_their_contexts() {
        let mut spec = quick(Scenario::FioRand, Mode::Hwdp);
        spec.threads = 2;
        spec.pin = Some(0);
        let m = run_job(&spec);
        let hw = |i: usize| {
            m.iter()
                .find(|(k, _)| k == &format!("thread/{i}/hw_context"))
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(hw(0), 0.0);
        assert_eq!(hw(1), 1.0);
    }

    #[test]
    fn smt_corun_scenario_runs_both_threads() {
        let mut spec = quick(Scenario::SmtCorun(crate::spec::SmtPartner::Mcf), Mode::Hwdp);
        spec.ratio = 8.0;
        spec.pin = Some(0);
        spec.ops = 1 << 62; // effectively unbounded; the window ends the run
        spec.time_cap_ms = 3;
        let m = run_job(&spec);
        let get = |k: &str| m.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap();
        assert!(get("thread/0/ops") > 10.0, "FIO made progress");
        assert!(get("thread/1/user_instructions") > 1000.0, "SPEC kernel retired work");
        assert_eq!(get("thread/0/hw_context"), 0.0);
        assert_eq!(get("thread/1/hw_context"), 1.0);
    }

    #[test]
    fn smt_corun_with_multiple_workload_threads_fits_the_partner() {
        let mut spec = quick(Scenario::SmtCorun(crate::spec::SmtPartner::Mcf), Mode::Hwdp);
        spec.ratio = 8.0;
        spec.threads = 2;
        spec.pin = Some(0);
        spec.ops = 1 << 62;
        spec.time_cap_ms = 3;
        let m = run_job(&spec);
        let get = |k: &str| m.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap();
        assert_eq!(get("thread/0/hw_context"), 0.0);
        assert_eq!(get("thread/1/hw_context"), 1.0);
        assert_eq!(get("thread/2/hw_context"), 2.0, "SPEC partner lands past the FIO threads");
    }

    #[test]
    fn pin_span_past_default_topology_grows_the_machine() {
        let mut spec = quick(Scenario::FioRand, Mode::Hwdp);
        spec.threads = 4;
        spec.pin = Some(14); // contexts 14..18 vs the default 8x2 = 16
        let m = run_job(&spec);
        let get = |k: &str| m.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap();
        assert_eq!(get("thread/0/hw_context"), 14.0);
        assert_eq!(get("thread/3/hw_context"), 17.0);
    }

    #[test]
    fn repeats_produce_mean_stddev_ci_triples() {
        let mut spec = quick(Scenario::FioRand, Mode::Hwdp);
        spec.repeats = 3;
        let m = run_job(&spec);
        let names: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert!(names.contains(&"user_ipc"));
        assert!(names.contains(&"user_ipc/stddev"));
        assert!(names.contains(&"user_ipc/ci95"));
        // Deterministic: repeats use derived seeds, not wall-clock.
        assert_eq!(m, run_job(&spec));
        // And the mean really averages distinct runs: ops is fixed per
        // run, so its spread is zero while elapsed time varies.
        let get = |k: &str| m.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap();
        assert_eq!(get("ops/stddev"), 0.0);
        assert!(get("elapsed_ns/stddev") > 0.0, "repeat seeds must differ");
    }

    #[test]
    fn repeats_one_is_byte_identical_to_plain_run() {
        let spec = quick(Scenario::FioRand, Mode::Hwdp);
        let mut r1 = spec;
        r1.repeats = 1;
        assert_eq!(run_job(&spec), run_job(&r1));
    }

    #[test]
    fn anatomy_is_closed_form() {
        let mut spec = quick(Scenario::Anatomy, Mode::Hwdp);
        spec.device = DeviceKind::OptanePmm;
        let m = run_job(&spec);
        assert!(m.iter().any(|(k, _)| k == "anatomy_total_ns"));
        let hw_total = m[0].1;
        spec.mode = Mode::Osdp;
        let os_total = run_job(&spec)[0].1;
        assert!(hw_total < os_total, "HWDP anatomy must beat OSDP");
    }

    #[test]
    fn knob_overrides_apply() {
        let mut spec = quick(Scenario::FioRand, Mode::Hwdp);
        spec.pmshr_entries = Some(2);
        spec.threads = 4;
        let m = run_job(&spec);
        let stalls = m.iter().find(|(k, _)| k == "pmshr_stalls").unwrap().1;
        let baseline = run_job(&quick(Scenario::FioRand, Mode::Hwdp));
        let base_stalls = baseline.iter().find(|(k, _)| k == "pmshr_stalls").unwrap().1;
        assert!(stalls >= base_stalls, "tiny PMSHR should not reduce stalls");
    }
}
