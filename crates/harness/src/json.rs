//! Dependency-free JSON: a value model, a deterministic writer, and a
//! recursive-descent parser.
//!
//! Objects preserve insertion order (a `Vec` of pairs, not a map), so the
//! writer's output is a pure function of construction order — required for
//! the harness's byte-identical-artifact guarantee.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always an `f64`; integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the least-bad representation.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // {:?} prints the shortest representation that round-trips.
        let _ = write!(out, "{n:?}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates (paired or lone) are not emitted by
                            // our writer; map them to U+FFFD on read.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let Some(c) = text.chars().next() else {
                        return Err(self.err("empty UTF-8 tail in string"));
                    };
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| ParseError {
            offset: start,
            message: "non-ASCII bytes in number".to_string(),
        })?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| ParseError { offset: start, message: format!("invalid number '{text}'") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Json::obj([
            ("name", Json::str("campaign-1")),
            ("count", Json::Num(16.0)),
            ("frac", Json::Num(0.375)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("list", Json::Arr(vec![Json::Num(1.0), Json::str("two")])),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let text = v.pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        let mut s = String::new();
        write_num(&mut s, 1500.0);
        assert_eq!(s, "1500");
        s.clear();
        write_num(&mut s, -3.0);
        assert_eq!(s, "-3");
        s.clear();
        write_num(&mut s, 0.25);
        assert_eq!(s, "0.25");
    }

    #[test]
    fn two_pow_53_round_trips() {
        let n = 9007199254740992.0; // 2^53
        let text = Json::Arr(vec![Json::Num(n)]).pretty();
        assert_eq!(Json::parse(&text).unwrap().as_arr().unwrap()[0].as_f64(), Some(n));
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::str("a\"b\\c\nd\te\u{1}f→");
        let text = v.pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Json::obj([("zeta", Json::Num(1.0)), ("alpha", Json::Num(2.0))]);
        let text = v.pretty();
        assert!(text.find("zeta").unwrap() < text.find("alpha").unwrap());
    }

    #[test]
    fn get_finds_keys() {
        let v = Json::obj([("a", Json::Num(1.0)), ("b", Json::str("x"))]);
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert!(v.get("c").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\"", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn nan_serializes_as_null() {
        let text = Json::Arr(vec![Json::Num(f64::NAN)]).pretty();
        assert_eq!(Json::parse(&text).unwrap().as_arr().unwrap()[0], Json::Null);
    }

    #[test]
    fn parses_scientific_notation_and_unicode_escape() {
        let v = Json::parse("{\"x\": 1.5e3, \"s\": \"\\u0041\"}").unwrap();
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(1500.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("A"));
    }

    #[test]
    fn every_control_char_round_trips() {
        // All 32 C0 controls plus DEL must escape on write and parse back.
        let s: String = (0u8..32).chain([0x7F]).map(|b| b as char).collect();
        let v = Json::str(s);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn multibyte_and_astral_strings_round_trip() {
        for s in ["π ≈ 3", "日本語", "🚀 \u{10FFFF}", "mixed → 🚀\n日本"] {
            let v = Json::str(s);
            assert_eq!(Json::parse(&v.pretty()).unwrap(), v, "{s:?}");
        }
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        for n in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let text = Json::Arr(vec![Json::Num(n)]).pretty();
            assert_eq!(
                Json::parse(&text).unwrap().as_arr().unwrap()[0],
                Json::Null,
                "{n} must not leak into an artifact"
            );
        }
    }

    #[test]
    fn negative_zero_and_subnormals_round_trip() {
        for n in [-0.0, f64::MIN_POSITIVE, 5e-324, -1.5e308] {
            let text = Json::Arr(vec![Json::Num(n)]).pretty();
            let back = Json::parse(&text).unwrap().as_arr().unwrap()[0].as_f64().unwrap();
            assert_eq!(back, n, "{n:e}");
        }
    }

    #[test]
    fn deep_nesting_round_trips() {
        // 300 levels of arrays with one object at the core — recursion
        // depth the harness itself never produces, but the parser must
        // not mangle (campaign artifacts are hand-inspected and edited).
        let mut v = Json::obj([("core", Json::Bool(true))]);
        for _ in 0..300 {
            v = Json::Arr(vec![v]);
        }
        let text = v.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        let mut probe = &back;
        for _ in 0..300 {
            probe = &probe.as_arr().unwrap()[0];
        }
        assert_eq!(probe.get("core"), Some(&Json::Bool(true)));
    }

    #[test]
    fn escape_sequences_parse_to_exact_chars() {
        let v = Json::parse("\"\\b\\f\\n\\r\\t\\\\\\\"\\/\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{8}\u{c}\n\r\t\\\"/"));
    }

    #[test]
    fn rejects_truncated_escapes_and_bad_unicode() {
        for bad in ["\"\\", "\"\\u00", "\"\\uZZZZ\"", "\"abc", "[\"\\uD800\"]"] {
            // A lone surrogate is the one case parsers disagree on; ours
            // must at minimum not panic. The rest are hard errors.
            let _ = Json::parse(bad);
        }
        assert!(Json::parse("\"\\u12\"").is_err(), "short unicode escape");
        assert!(Json::parse("\"\\x41\"").is_err(), "unknown escape letter");
    }
}
