//! Seeded chaos campaigns with a differential recovery oracle.
//!
//! A chaos campaign draws random-but-reproducible fault plans — controller
//! crashes plus every transient fault class — over small read-only jobs,
//! runs each faulted job next to a fault-free twin with the same seed, and
//! asserts the recovery contract:
//!
//! * the faulted run completes with a clean hwdp-audit report, and every
//!   data-verification failure is accounted for by a surfaced typed
//!   `IoError` (bounded retry exhausting is designed degradation; wrong
//!   bytes with no surfaced error is corruption);
//! * its end-of-run content digest (page cache ∪ device blocks, see
//!   `System::content_digest`) is identical to the twin's — recovery lost
//!   nothing the application could observe;
//! * its completed-operation count never exceeds the twin's (fault
//!   recovery degrades counters monotonically, it cannot invent work).
//!
//! Jobs are restricted to read-only workloads (`fio`, `ycsb-c`) and
//! transient-only fault plans, so a correct system must converge on
//! byte-identical contents whatever was crashed, dropped, or delayed
//! along the way. A failing plan is automatically shrunk to a minimal
//! reproducer before it lands in the `CHAOS_<name>.json` report.

use crate::json::Json;
use crate::progress::Progress;
use crate::runner::simulate_with_digest;
use crate::seed::job_seed;
use crate::spec::{JobSpec, Scenario};
use hwdp_core::Mode;
use hwdp_nvme::fault::FaultConfig;
use hwdp_sim::rng::Prng;
use hwdp_sim::SanitizeLevel;
use hwdp_workloads::YcsbKind;

/// Salt mixed into the per-job seed before drawing the fault plan, so the
/// plan stream is decorrelated from the simulator seed the job runs with.
const CHAOS_PLAN_SALT: u64 = 0xC4A0_5C4A_0511_FA17;

/// A chaos campaign definition.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Campaign name (becomes `CHAOS_<name>.json`).
    pub name: String,
    /// Master seed; every job's spec and fault plan derive from it.
    pub seed: u64,
    /// Number of fault-plan draws to run through the oracle.
    pub jobs: usize,
    /// Whether plans include controller crashes (on by default; turning
    /// this off leaves only the transient fault classes).
    pub crashes: bool,
    /// Sanitize level for the faulted run (the twin always runs `Full` so
    /// oracle verdicts never depend on it).
    pub sanitize: SanitizeLevel,
}

impl ChaosConfig {
    /// A campaign with the default shape: 8 jobs, crashes on, full
    /// sanitizing.
    pub fn new(name: impl Into<String>, seed: u64) -> ChaosConfig {
        ChaosConfig {
            name: name.into(),
            seed,
            jobs: 8,
            crashes: true,
            sanitize: SanitizeLevel::Full,
        }
    }
}

/// One oracle failure, with its shrunk reproducer.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosFailure {
    /// Job index within the campaign.
    pub index: usize,
    /// Human-readable job label.
    pub label: String,
    /// The job's simulator seed.
    pub seed: u64,
    /// What the oracle observed.
    pub reason: String,
    /// Minimal failing fault plan in `--faults` syntax.
    pub minimal_faults: String,
}

/// The campaign-level result written to `CHAOS_<name>.json`.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Campaign name.
    pub campaign: String,
    /// Master seed.
    pub seed: u64,
    /// Jobs run through the oracle.
    pub jobs: usize,
    /// Controller resets completed across all faulted runs.
    pub controller_resets: u64,
    /// In-flight commands lost to crashes across all faulted runs.
    pub crash_ios_lost: u64,
    /// Jobs whose faulted run disagreed with its fault-free twin.
    pub oracle_mismatches: usize,
    /// Shrunk reproducers, one per mismatching job.
    pub failures: Vec<ChaosFailure>,
}

impl ChaosReport {
    /// Whether every job satisfied the recovery contract.
    pub fn is_clean(&self) -> bool {
        self.oracle_mismatches == 0
    }

    /// The artifact file name (`CHAOS_<campaign>.json`).
    pub fn file_name(&self) -> String {
        format!("CHAOS_{}.json", self.campaign)
    }

    /// Serializes the report. Fully deterministic: no wall-clock fields.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("campaign", Json::str(self.campaign.clone())),
            ("seed", Json::Str(format!("{:#018x}", self.seed))),
            ("jobs", Json::Num(self.jobs as f64)),
            ("controller_resets", Json::Num(self.controller_resets as f64)),
            ("crash_ios_lost", Json::Num(self.crash_ios_lost as f64)),
            ("oracle_mismatches", Json::Num(self.oracle_mismatches as f64)),
            (
                "failures",
                Json::Arr(
                    self.failures
                        .iter()
                        .map(|f| {
                            Json::obj([
                                ("index", Json::Num(f.index as f64)),
                                ("label", Json::str(f.label.clone())),
                                ("seed", Json::Str(format!("{:#018x}", f.seed))),
                                ("reason", Json::str(f.reason.clone())),
                                ("minimal_faults", Json::str(f.minimal_faults.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Generates job `index` of a chaos campaign: a small read-only workload
/// with a randomly drawn fault plan. Pure function of `(seed, index,
/// crashes)`, so any job can be re-derived in isolation.
pub fn chaos_job(seed: u64, index: usize, crashes: bool) -> JobSpec {
    let job = job_seed(seed, index as u64);
    let mut rng = Prng::seed_from(job ^ CHAOS_PLAN_SALT);
    // Read-only scenarios only: the differential oracle compares final
    // contents, so the workload must not change what a correct run writes.
    let scenario =
        if rng.chance(0.5) { Scenario::FioRand } else { Scenario::Ycsb(YcsbKind::C) };
    let mode = if rng.chance(0.5) { Mode::Hwdp } else { Mode::Osdp };
    let mut spec = JobSpec::new(scenario, mode, job);
    spec.memory_frames = if rng.chance(0.5) { 128 } else { 256 };
    spec.ratio = if rng.chance(0.5) { 2.0 } else { 4.0 };
    spec.threads = 1 + rng.below(2) as usize;
    spec.ops = rng.range(100, 250);
    spec.faults = Some(chaos_faults(&mut rng, crashes));
    spec
}

/// Draws one fault plan: each transient class fires with its own
/// probability, and (when enabled) a controller crash schedule rides on
/// top. Plans stay transient and read-targeted so the oracle's content
/// comparison is sound.
fn chaos_faults(rng: &mut Prng, crashes: bool) -> FaultConfig {
    let mut f = FaultConfig::default();
    if rng.chance(0.6) {
        f.media_error_rate = rng.range(1, 15) as f64 / 100.0;
    }
    if rng.chance(0.6) {
        f.delay_rate = rng.range(1, 10) as f64 / 100.0;
        f.delay_factor = rng.range(5, 50) as f64;
    }
    if rng.chance(0.5) {
        f.drop_rate = rng.range(1, 8) as f64 / 100.0;
    }
    if rng.chance(0.5) {
        f.queue_full_rate = rng.range(1, 8) as f64 / 100.0;
        f.queue_full_len = rng.range(2, 16) as u32;
    }
    if crashes {
        f.crash_at_us = rng.range(200, 2_000);
        f.crash_count = rng.range(1, 2) as u32;
        f.reset_latency_us = rng.range(50, 400);
    }
    f
}

/// What the oracle saw for one faulted job.
struct Verdict {
    /// `None` when the recovery contract held; otherwise the mismatch.
    mismatch: Option<String>,
    resets: u64,
    ios_lost: u64,
}

/// Runs `spec` and its fault-free twin, comparing outcomes. The twin
/// shares the simulator seed, so for read-only workloads every divergence
/// is attributable to fault handling.
fn oracle(spec: &JobSpec) -> Verdict {
    let mut faulted_spec = *spec;
    faulted_spec.sanitize = SanitizeLevel::Full;
    let (faulted, faulted_digest) = simulate_with_digest(&faulted_spec);
    let mut twin_spec = *spec;
    twin_spec.faults = None;
    twin_spec.sanitize = SanitizeLevel::Full;
    let (twin, twin_digest) = simulate_with_digest(&twin_spec);

    // A surfaced typed IoError hands `None` to every waiting thread, and
    // each waiter logs one verification failure — designed degradation,
    // not corruption. Any failure beyond that bound means the device
    // returned wrong bytes without an error, which is never acceptable.
    let error_budget = faulted.perf.io_errors_surfaced * spec.threads as u64;
    let mismatch = if faulted.verify_failures() > error_budget {
        Some(format!(
            "{} data-verification failure(s) but only {} surfaced IoError(s) across {} thread(s): unannounced corruption",
            faulted.verify_failures(),
            faulted.perf.io_errors_surfaced,
            spec.threads
        ))
    } else if !faulted.audit.is_clean() {
        Some(format!(
            "{} audit violation(s) in the faulted run (first: {})",
            faulted.audit.violations.len(),
            faulted.audit.violations[0]
        ))
    } else if faulted_digest != twin_digest {
        Some(format!(
            "content digest diverged from the fault-free twin ({faulted_digest:#018x} vs {twin_digest:#018x})"
        ))
    } else if faulted.ops > twin.ops {
        Some(format!(
            "faulted run completed more ops than its twin ({} vs {})",
            faulted.ops, twin.ops
        ))
    } else {
        None
    };
    Verdict { mismatch, resets: faulted.controller_resets, ios_lost: faulted.crash_ios_lost }
}

/// Shrinks a failing fault plan to a minimal reproducer: repeatedly tries
/// to zero out whole fault classes (then to simplify the crash schedule),
/// keeping every simplification that still fails the oracle. Bounded by
/// an oracle-call budget so shrinking never dominates the campaign.
fn shrink(spec: &JobSpec, plan: FaultConfig) -> FaultConfig {
    let mut best = plan;
    let mut budget = 24u32;
    loop {
        let mut improved = false;
        for candidate in shrink_candidates(&best) {
            if budget == 0 {
                return best;
            }
            budget -= 1;
            let mut s = *spec;
            s.faults = Some(candidate);
            if oracle(&s).mismatch.is_some() {
                best = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// The simplification moves, coarsest first: drop a whole fault class,
/// then shrink the crash schedule. Only moves that change the plan are
/// yielded.
fn shrink_candidates(f: &FaultConfig) -> Vec<FaultConfig> {
    let mut out = Vec::new();
    let mut push = |candidate: FaultConfig| {
        if candidate != *f && !candidate.is_zero() {
            out.push(candidate);
        }
    };
    push(FaultConfig { media_error_rate: 0.0, ..*f });
    push(FaultConfig { delay_rate: 0.0, ..*f });
    push(FaultConfig { drop_rate: 0.0, ..*f });
    push(FaultConfig { queue_full_rate: 0.0, ..*f });
    push(FaultConfig { crash_at_us: 0, ..*f });
    push(FaultConfig { crash_count: 1, ..*f });
    out
}

/// Runs a chaos campaign: generates `cfg.jobs` fault plans, drives each
/// through the differential oracle, shrinks every failure, and returns
/// the deterministic report. Jobs run sequentially — each one is two full
/// simulations plus possible shrinking, and chaos campaigns are small.
pub fn run_chaos(cfg: &ChaosConfig, progress: &mut dyn Progress) -> ChaosReport {
    let mut report = ChaosReport {
        campaign: cfg.name.clone(),
        seed: cfg.seed,
        jobs: cfg.jobs,
        controller_resets: 0,
        crash_ios_lost: 0,
        oracle_mismatches: 0,
        failures: Vec::new(),
    };
    for index in 0..cfg.jobs {
        let mut spec = chaos_job(cfg.seed, index, cfg.crashes);
        spec.sanitize = cfg.sanitize;
        progress.job_started(index, &spec);
        let start = std::time::Instant::now();
        let verdict = oracle(&spec);
        report.controller_resets += verdict.resets;
        report.crash_ios_lost += verdict.ios_lost;
        let ok = verdict.mismatch.is_none();
        if let Some(reason) = verdict.mismatch {
            report.oracle_mismatches += 1;
            // hwdp-lint: allow(panic-expect): chaos_job always installs a plan
            let plan = spec.faults.expect("chaos jobs carry a fault plan");
            let minimal = shrink(&spec, plan);
            report.failures.push(ChaosFailure {
                index,
                label: spec.label(),
                seed: spec.seed,
                reason,
                minimal_faults: minimal.canonical(),
            });
        }
        progress.job_finished(index, &spec, ok, start.elapsed().as_secs_f64() * 1e3);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::Counting;

    #[test]
    fn chaos_jobs_are_reproducible_and_read_only() {
        for index in 0..16 {
            let a = chaos_job(0xC4A05, index, true);
            let b = chaos_job(0xC4A05, index, true);
            assert_eq!(a, b, "job derivation is pure");
            assert!(
                matches!(a.scenario, Scenario::FioRand | Scenario::Ycsb(YcsbKind::C)),
                "read-only scenarios only: {:?}",
                a.scenario
            );
            let f = a.faults.expect("every chaos job carries a plan");
            assert!(f.crash_at_us >= 200, "crashes enabled: {f:?}");
            assert!(!f.reads_only || f.drop_rate >= 0.0); // plan stays read-targeted by default
            let crashless = chaos_job(0xC4A05, index, false);
            assert_eq!(crashless.faults.expect("plan").crash_at_us, 0);
        }
    }

    #[test]
    fn oracle_passes_on_fault_free_plan() {
        // With no faults, the "faulted" run IS the twin; the oracle must
        // agree with itself.
        let mut spec = chaos_job(7, 0, false);
        spec.faults = None;
        spec.memory_frames = 128;
        spec.ops = 40;
        let v = oracle(&spec);
        assert_eq!(v.mismatch, None);
        assert_eq!(v.resets, 0);
    }

    #[test]
    fn small_campaign_is_clean_and_counts_resets() {
        let mut cfg = ChaosConfig::new("unit", 0xD15C);
        cfg.jobs = 2;
        let mut progress = Counting::default();
        let report = run_chaos(&cfg, &mut progress);
        assert!(report.is_clean(), "failures: {:?}", report.failures);
        assert_eq!(progress.finished, 2);
        assert_eq!(report.jobs, 2);
        let json = report.to_json().pretty();
        assert!(json.contains("\"oracle_mismatches\": 0"), "{json}");
    }

    #[test]
    fn shrink_candidates_simplify_without_zeroing_everything() {
        let plan = FaultConfig {
            media_error_rate: 0.1,
            drop_rate: 0.05,
            crash_at_us: 500,
            crash_count: 2,
            reset_latency_us: 100,
            ..FaultConfig::default()
        };
        let cands = shrink_candidates(&plan);
        assert!(cands.iter().all(|c| !c.is_zero()), "candidates stay live");
        assert!(cands.iter().any(|c| c.media_error_rate == 0.0));
        assert!(cands.iter().any(|c| c.crash_at_us == 0));
        assert!(cands.iter().any(|c| c.crash_count == 1 && c.crash_at_us == plan.crash_at_us));
        // A plan with one live class has nowhere left to shrink but the
        // crash schedule.
        let lone = FaultConfig { drop_rate: 0.05, ..FaultConfig::default() };
        assert!(shrink_candidates(&lone).is_empty());
    }
}
