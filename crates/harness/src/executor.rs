//! The thread-pool executor.
//!
//! Workers are scoped `std::thread`s draining a shared queue of job
//! indices. Each job runs under `catch_unwind`, so a panicking simulation
//! surfaces as a `Failed` record instead of tearing down the campaign.
//! Results land in a slot per job index — output order is grid order, never
//! completion order — and job *metrics* are pure functions of the spec, so
//! worker count affects only wall time.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::artifact::{Artifact, JobRecord, JobStatus};
use crate::progress::Progress;
use crate::runner::run_job;
use crate::spec::{Campaign, JobSpec};

/// What one job produced.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome {
    /// Metrics from a completed run.
    Ok(Vec<(String, f64)>),
    /// The job panicked; the payload is the panic message.
    Panicked(String),
}

/// Runs every job of `campaign` on `workers` threads via the default
/// runner and packages the results as an [`Artifact`].
pub fn execute_campaign(campaign: &Campaign, workers: usize, progress: &mut dyn Progress) -> Artifact {
    let results = execute(campaign, workers, progress);
    Artifact::from_outcomes(campaign, &results)
}

/// Runs every job through [`run_job`](crate::runner::run_job), returning
/// `(outcome, wall_ms)` per job in campaign order.
pub fn execute(
    campaign: &Campaign,
    workers: usize,
    progress: &mut dyn Progress,
) -> Vec<(JobOutcome, f64)> {
    execute_with(campaign, workers, progress, run_job)
}

/// [`execute`] with a custom job function — the panic-isolation and
/// ordering machinery under test-controlled workloads.
pub fn execute_with(
    campaign: &Campaign,
    workers: usize,
    progress: &mut dyn Progress,
    job_fn: impl Fn(&JobSpec) -> Vec<(String, f64)> + Sync,
) -> Vec<(JobOutcome, f64)> {
    let jobs = &campaign.jobs;
    let workers = workers.max(1).min(jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<(JobOutcome, f64)>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    let shared = Mutex::new((slots, progress));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = jobs.get(index) else { break };
                shared.lock().unwrap().1.job_started(index, spec);
                let start = Instant::now();
                let outcome = match catch_unwind(AssertUnwindSafe(|| job_fn(spec))) {
                    Ok(metrics) => JobOutcome::Ok(metrics),
                    Err(payload) => JobOutcome::Panicked(panic_message(&payload)),
                };
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                let ok = matches!(outcome, JobOutcome::Ok(_));
                let mut guard = shared.lock().unwrap();
                guard.0[index] = Some((outcome, wall_ms));
                guard.1.job_finished(index, spec, ok, wall_ms);
            });
        }
    });

    let (slots, _) = shared.into_inner().unwrap();
    slots.into_iter().map(|s| s.expect("every job index was claimed")).collect()
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Artifact {
    /// Packages executor outcomes for `campaign` into an artifact.
    pub fn from_outcomes(campaign: &Campaign, outcomes: &[(JobOutcome, f64)]) -> Artifact {
        let jobs = campaign
            .jobs
            .iter()
            .zip(outcomes)
            .enumerate()
            .map(|(index, (spec, (outcome, wall_ms)))| {
                let (status, metrics) = match outcome {
                    JobOutcome::Ok(m) => (JobStatus::Ok, m.clone()),
                    JobOutcome::Panicked(msg) => (JobStatus::Failed(msg.clone()), Vec::new()),
                };
                JobRecord { index, spec: *spec, status, metrics, wall_ms: *wall_ms }
            })
            .collect();
        Artifact { campaign: campaign.name.clone(), seed: campaign.seed, jobs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::Counting;
    use crate::spec::{Grid, Scenario};
    use hwdp_core::Mode;

    fn fake_campaign(n: usize) -> Campaign {
        let ratios: Vec<f64> = (0..n).map(|i| 2.0 + i as f64).collect();
        Grid::new("fake", 7).scenarios([Scenario::FioRand]).ratios(ratios).expand()
    }

    fn spec_metric(spec: &JobSpec) -> Vec<(String, f64)> {
        vec![("ratio".into(), spec.ratio), ("seed_low".into(), (spec.seed & 0xFFFF) as f64)]
    }

    #[test]
    fn results_in_campaign_order_regardless_of_workers() {
        let campaign = fake_campaign(9);
        let single = execute_with(&campaign, 1, &mut Counting::default(), spec_metric);
        let pooled = execute_with(&campaign, 4, &mut Counting::default(), spec_metric);
        // Outcomes (not wall times) must be identical across worker counts.
        let outcomes = |r: &[(JobOutcome, f64)]| r.iter().map(|(o, _)| o.clone()).collect::<Vec<_>>();
        assert_eq!(outcomes(&single), outcomes(&pooled));
        for (i, (outcome, _)) in single.iter().enumerate() {
            let JobOutcome::Ok(m) = outcome else { panic!("job {i} failed") };
            assert_eq!(m[0].1, campaign.jobs[i].ratio);
        }
    }

    #[test]
    fn panicking_job_is_isolated() {
        let campaign = fake_campaign(5);
        let mut progress = Counting::default();
        let results = execute_with(&campaign, 2, &mut progress, |spec| {
            assert!(spec.ratio != 4.0, "boom at ratio 4");
            spec_metric(spec)
        });
        let failed: Vec<usize> = results
            .iter()
            .enumerate()
            .filter(|(_, (o, _))| matches!(o, JobOutcome::Panicked(_)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(failed, vec![2], "only the ratio-4 job fails");
        let JobOutcome::Panicked(msg) = &results[2].0 else { unreachable!() };
        assert!(msg.contains("boom"), "panic message captured: {msg}");
        assert_eq!(progress.finished, 5);
        assert_eq!(progress.failed, 1);
    }

    #[test]
    fn worker_count_clamps_to_job_count() {
        let campaign = fake_campaign(2);
        let results = execute_with(&campaign, 64, &mut Counting::default(), spec_metric);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn progress_sees_every_job() {
        let campaign = fake_campaign(6);
        let mut progress = Counting::default();
        execute_with(&campaign, 3, &mut progress, spec_metric);
        assert_eq!(progress.started, 6);
        assert_eq!(progress.finished, 6);
        assert_eq!(progress.failed, 0);
    }

    #[test]
    fn real_runner_executes_small_campaign() {
        let campaign = Grid::new("exec-smoke", 3)
            .scenarios([Scenario::FioRand])
            .modes([Mode::Osdp, Mode::Hwdp])
            .memory_frames(96)
            .ops(30)
            .expand();
        let artifact = execute_campaign(&campaign, 2, &mut Counting::default());
        assert_eq!(artifact.jobs.len(), 2);
        assert!(artifact.jobs.iter().all(|j| j.is_ok()));
    }
}
