//! The thread-pool executor.
//!
//! Workers are scoped `std::thread`s draining a shared queue of job
//! indices. Each job runs under `catch_unwind`, so a panicking simulation
//! surfaces as a `Failed` record instead of tearing down the campaign.
//! Results land in a slot per job index — output order is grid order, never
//! completion order — and job *metrics* are pure functions of the spec, so
//! worker count affects only wall time.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::artifact::{Artifact, JobRecord, JobStatus};
use crate::progress::Progress;
use crate::runner::run_job;
use crate::spec::{Campaign, JobSpec};

/// What one job produced.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome {
    /// Metrics from a completed run.
    Ok(Vec<(String, f64)>),
    /// The job panicked; the payload is the panic message.
    Panicked(String),
    /// The job exceeded the per-job wall-clock watchdog; the payload is
    /// the timeout description. Its thread cannot be killed and is
    /// abandoned — the campaign moves on instead of hanging.
    TimedOut(String),
}

/// Runs every job of `campaign` on `workers` threads via the default
/// runner and packages the results as an [`Artifact`].
pub fn execute_campaign(campaign: &Campaign, workers: usize, progress: &mut dyn Progress) -> Artifact {
    let results = execute(campaign, workers, progress);
    Artifact::from_outcomes(campaign, &results)
}

/// Runs every job through [`run_job`](crate::runner::run_job), returning
/// `(outcome, wall_ms)` per job in campaign order.
pub fn execute(
    campaign: &Campaign,
    workers: usize,
    progress: &mut dyn Progress,
) -> Vec<(JobOutcome, f64)> {
    execute_with(campaign, workers, progress, run_job)
}

/// Like [`execute_campaign`], but reuses successful records from `prior`
/// — the machinery behind `hwdp sweep --resume`. A record is reused only
/// when the campaign name and master seed match and the record at the
/// same index has an equal [`JobSpec`] and completed without failing;
/// everything else (missing, failed, or spec-mismatched jobs) reruns.
/// Because job metrics are pure functions of the spec, the merged
/// artifact is canonically identical to a from-scratch run.
///
/// `timeout_ms` arms the per-job wall-clock watchdog: a job exceeding it
/// is recorded as failed (see [`execute_watchdog_with`]) instead of
/// hanging the campaign. `None` keeps the plain in-worker execution path.
pub fn execute_campaign_resume(
    campaign: &Campaign,
    prior: Option<&Artifact>,
    workers: usize,
    timeout_ms: Option<u64>,
    progress: &mut dyn Progress,
) -> Artifact {
    match timeout_ms {
        None => execute_resume_with(campaign, prior, workers, progress, run_job),
        Some(ms) => resume_with_exec(campaign, prior, progress, |pending, progress| {
            execute_watchdog_with(pending, workers, ms, progress, run_job)
        }),
    }
}

/// [`execute_campaign_resume`] with a custom job function (test hook).
pub fn execute_resume_with(
    campaign: &Campaign,
    prior: Option<&Artifact>,
    workers: usize,
    progress: &mut dyn Progress,
    job_fn: impl Fn(&JobSpec) -> Vec<(String, f64)> + Sync,
) -> Artifact {
    resume_with_exec(campaign, prior, progress, |pending, progress| {
        execute_with(pending, workers, progress, job_fn)
    })
}

/// The resume/merge machinery shared by the plain and watchdog paths:
/// reuses prior records, hands the pending jobs to `exec`, and stitches
/// the results back in campaign order.
fn resume_with_exec(
    campaign: &Campaign,
    prior: Option<&Artifact>,
    progress: &mut dyn Progress,
    exec: impl FnOnce(&Campaign, &mut dyn Progress) -> Vec<(JobOutcome, f64)>,
) -> Artifact {
    let prior = prior.filter(|a| a.campaign == campaign.name && a.seed == campaign.seed);
    let reused: Vec<Option<JobRecord>> = campaign
        .jobs
        .iter()
        .enumerate()
        .map(|(index, spec)| {
            let record = prior?
                .jobs
                .iter()
                .find(|r| r.index == index && r.spec == *spec && r.is_ok())?;
            progress.job_skipped(index, spec);
            Some(record.clone())
        })
        .collect();

    let pending = Campaign {
        name: campaign.name.clone(),
        seed: campaign.seed,
        jobs: campaign
            .jobs
            .iter()
            .zip(&reused)
            .filter(|(_, r)| r.is_none())
            .map(|(spec, _)| *spec)
            .collect(),
    };
    let mut fresh = exec(&pending, progress).into_iter();

    let jobs = campaign
        .jobs
        .iter()
        .zip(reused)
        .enumerate()
        .map(|(index, (spec, record))| match record {
            Some(r) => r,
            None => {
                // hwdp-lint: allow(panic-expect): pending holds exactly the jobs with no reused record
                let (outcome, wall_ms) = fresh.next().expect("one fresh result per pending job");
                let (status, metrics) = outcome_status(outcome);
                JobRecord { index, spec: *spec, status, metrics, wall_ms }
            }
        })
        .collect();
    Artifact { campaign: campaign.name.clone(), seed: campaign.seed, jobs }
}

/// Maps an executor outcome onto the artifact's job status. Timed-out
/// jobs surface as failed records carrying the watchdog message, keeping
/// the artifact schema unchanged.
fn outcome_status(outcome: JobOutcome) -> (JobStatus, Vec<(String, f64)>) {
    match outcome {
        JobOutcome::Ok(m) => (JobStatus::Ok, m),
        JobOutcome::Panicked(msg) => (JobStatus::Failed(msg), Vec::new()),
        JobOutcome::TimedOut(msg) => (JobStatus::Failed(msg), Vec::new()),
    }
}

/// [`execute`] with a custom job function — the panic-isolation and
/// ordering machinery under test-controlled workloads.
pub fn execute_with(
    campaign: &Campaign,
    workers: usize,
    progress: &mut dyn Progress,
    job_fn: impl Fn(&JobSpec) -> Vec<(String, f64)> + Sync,
) -> Vec<(JobOutcome, f64)> {
    let jobs = &campaign.jobs;
    let workers = workers.max(1).min(jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<(JobOutcome, f64)>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    let shared = Mutex::new((slots, progress));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = jobs.get(index) else { break };
                // A poisoned lock means a progress callback panicked in
                // another worker; the slots themselves are still sound,
                // so recover and keep draining the queue.
                shared.lock().unwrap_or_else(|p| p.into_inner()).1.job_started(index, spec);
                let start = Instant::now();
                let outcome = match catch_unwind(AssertUnwindSafe(|| job_fn(spec))) {
                    Ok(metrics) => JobOutcome::Ok(metrics),
                    Err(payload) => JobOutcome::Panicked(panic_message(&payload)),
                };
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                let ok = matches!(outcome, JobOutcome::Ok(_));
                let mut guard = shared.lock().unwrap_or_else(|p| p.into_inner());
                guard.0[index] = Some((outcome, wall_ms));
                guard.1.job_finished(index, spec, ok, wall_ms);
            });
        }
    });

    let (slots, _) = shared.into_inner().unwrap_or_else(|p| p.into_inner());
    // hwdp-lint: allow(panic-expect): the atomic counter hands every index to exactly one worker
    slots.into_iter().map(|s| s.expect("every job index was claimed")).collect()
}

/// [`execute_with`] plus a per-job wall-clock watchdog: every job runs on
/// a detached thread and the worker waits at most `timeout_ms` for its
/// result. A job that overruns is recorded as [`JobOutcome::TimedOut`]
/// and its thread abandoned (Rust threads cannot be killed), so one hung
/// simulation becomes a typed job error instead of a stuck campaign.
///
/// The watchdog observes wall-clock time, so which jobs trip it is not
/// deterministic — arm it as a liveness net, not as part of a
/// byte-stable artifact pipeline. `job_fn` must be `Copy + 'static`
/// (a fn pointer or capture-free closure) because it crosses into
/// detached threads.
pub fn execute_watchdog_with(
    campaign: &Campaign,
    workers: usize,
    timeout_ms: u64,
    progress: &mut dyn Progress,
    job_fn: impl Fn(&JobSpec) -> Vec<(String, f64)> + Copy + Send + Sync + 'static,
) -> Vec<(JobOutcome, f64)> {
    let jobs = &campaign.jobs;
    let workers = workers.max(1).min(jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<(JobOutcome, f64)>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    let shared = Mutex::new((slots, progress));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = jobs.get(index) else { break };
                shared.lock().unwrap_or_else(|p| p.into_inner()).1.job_started(index, spec);
                let start = Instant::now();
                let outcome = run_with_watchdog(timeout_ms, *spec, job_fn);
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                let ok = matches!(outcome, JobOutcome::Ok(_));
                let mut guard = shared.lock().unwrap_or_else(|p| p.into_inner());
                guard.0[index] = Some((outcome, wall_ms));
                guard.1.job_finished(index, spec, ok, wall_ms);
            });
        }
    });

    let (slots, _) = shared.into_inner().unwrap_or_else(|p| p.into_inner());
    // hwdp-lint: allow(panic-expect): the atomic counter hands every index to exactly one worker
    slots.into_iter().map(|s| s.expect("every job index was claimed")).collect()
}

/// Runs one job on a detached thread, bounded by `timeout_ms` of wall
/// clock. Panic isolation matches the in-worker path.
pub fn run_with_watchdog(
    timeout_ms: u64,
    spec: JobSpec,
    job_fn: impl FnOnce(&JobSpec) -> Vec<(String, f64)> + Send + 'static,
) -> JobOutcome {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let outcome = match catch_unwind(AssertUnwindSafe(|| job_fn(&spec))) {
            Ok(metrics) => JobOutcome::Ok(metrics),
            Err(payload) => JobOutcome::Panicked(panic_message(&payload)),
        };
        let _ = tx.send(outcome);
    });
    match rx.recv_timeout(std::time::Duration::from_millis(timeout_ms)) {
        Ok(outcome) => outcome,
        Err(_) => JobOutcome::TimedOut(format!(
            "wall-clock watchdog: job exceeded {timeout_ms} ms and was abandoned"
        )),
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Artifact {
    /// Packages executor outcomes for `campaign` into an artifact.
    pub fn from_outcomes(campaign: &Campaign, outcomes: &[(JobOutcome, f64)]) -> Artifact {
        let jobs = campaign
            .jobs
            .iter()
            .zip(outcomes)
            .enumerate()
            .map(|(index, (spec, (outcome, wall_ms)))| {
                let (status, metrics) = outcome_status(outcome.clone());
                JobRecord { index, spec: *spec, status, metrics, wall_ms: *wall_ms }
            })
            .collect();
        Artifact { campaign: campaign.name.clone(), seed: campaign.seed, jobs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::Counting;
    use crate::spec::{Grid, Scenario};
    use hwdp_core::Mode;

    fn fake_campaign(n: usize) -> Campaign {
        let ratios: Vec<f64> = (0..n).map(|i| 2.0 + i as f64).collect();
        Grid::new("fake", 7).scenarios([Scenario::FioRand]).ratios(ratios).expand()
    }

    fn spec_metric(spec: &JobSpec) -> Vec<(String, f64)> {
        vec![("ratio".into(), spec.ratio), ("seed_low".into(), (spec.seed & 0xFFFF) as f64)]
    }

    #[test]
    fn results_in_campaign_order_regardless_of_workers() {
        let campaign = fake_campaign(9);
        let single = execute_with(&campaign, 1, &mut Counting::default(), spec_metric);
        let pooled = execute_with(&campaign, 4, &mut Counting::default(), spec_metric);
        // Outcomes (not wall times) must be identical across worker counts.
        let outcomes = |r: &[(JobOutcome, f64)]| r.iter().map(|(o, _)| o.clone()).collect::<Vec<_>>();
        assert_eq!(outcomes(&single), outcomes(&pooled));
        for (i, (outcome, _)) in single.iter().enumerate() {
            let JobOutcome::Ok(m) = outcome else { panic!("job {i} failed") };
            assert_eq!(m[0].1, campaign.jobs[i].ratio);
        }
    }

    #[test]
    fn panicking_job_is_isolated() {
        let campaign = fake_campaign(5);
        let mut progress = Counting::default();
        let results = execute_with(&campaign, 2, &mut progress, |spec| {
            assert!(spec.ratio != 4.0, "boom at ratio 4");
            spec_metric(spec)
        });
        let failed: Vec<usize> = results
            .iter()
            .enumerate()
            .filter(|(_, (o, _))| matches!(o, JobOutcome::Panicked(_)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(failed, vec![2], "only the ratio-4 job fails");
        let JobOutcome::Panicked(msg) = &results[2].0 else { unreachable!() };
        assert!(msg.contains("boom"), "panic message captured: {msg}");
        assert_eq!(progress.finished, 5);
        assert_eq!(progress.failed, 1);
    }

    #[test]
    fn worker_count_clamps_to_job_count() {
        let campaign = fake_campaign(2);
        let results = execute_with(&campaign, 64, &mut Counting::default(), spec_metric);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn progress_sees_every_job() {
        let campaign = fake_campaign(6);
        let mut progress = Counting::default();
        execute_with(&campaign, 3, &mut progress, spec_metric);
        assert_eq!(progress.started, 6);
        assert_eq!(progress.finished, 6);
        assert_eq!(progress.failed, 0);
    }

    #[test]
    fn resume_completes_half_artifact_identically() {
        let campaign = fake_campaign(8);
        let full = Artifact::from_outcomes(
            &campaign,
            &execute_with(&campaign, 2, &mut Counting::default(), spec_metric),
        );
        // A half-written artifact: the first three records only.
        let partial = Artifact {
            campaign: full.campaign.clone(),
            seed: full.seed,
            jobs: full.jobs[..3].to_vec(),
        };
        let mut progress = Counting::default();
        let resumed =
            execute_resume_with(&campaign, Some(&partial), 2, &mut progress, spec_metric);
        assert_eq!(progress.skipped, 3, "the three stored jobs are reused");
        assert_eq!(progress.started, 5, "only the missing five run");
        assert_eq!(
            resumed.canonical_string(),
            full.canonical_string(),
            "resumed artifact is canonically identical to a from-scratch run"
        );
    }

    #[test]
    fn resume_reruns_failed_and_mismatched_records() {
        let campaign = fake_campaign(4);
        let full = Artifact::from_outcomes(
            &campaign,
            &execute_with(&campaign, 1, &mut Counting::default(), spec_metric),
        );
        let mut prior = full.clone();
        // Record 1 failed last time; record 2 was produced by a different
        // spec (e.g. the grid changed between runs). Neither may be reused.
        prior.jobs[1].status = JobStatus::Failed("earlier crash".into());
        prior.jobs[2].spec.ratio += 1.0;
        let mut progress = Counting::default();
        let resumed = execute_resume_with(&campaign, Some(&prior), 1, &mut progress, spec_metric);
        assert_eq!(progress.skipped, 2, "only records 0 and 3 are reused");
        assert_eq!(progress.started, 2);
        assert_eq!(resumed.canonical_string(), full.canonical_string());
    }

    #[test]
    fn resume_ignores_prior_from_different_campaign_or_seed() {
        let campaign = fake_campaign(3);
        let full = Artifact::from_outcomes(
            &campaign,
            &execute_with(&campaign, 1, &mut Counting::default(), spec_metric),
        );
        let mut renamed = full.clone();
        renamed.campaign = "other".into();
        let mut reseeded = full.clone();
        reseeded.seed ^= 1;
        for prior in [renamed, reseeded] {
            let mut progress = Counting::default();
            execute_resume_with(&campaign, Some(&prior), 1, &mut progress, spec_metric);
            assert_eq!(progress.skipped, 0, "foreign artifacts are never reused");
            assert_eq!(progress.started, 3);
        }
    }

    fn spec_metric_static(spec: &JobSpec) -> Vec<(String, f64)> {
        vec![("ratio".into(), spec.ratio), ("seed_low".into(), (spec.seed & 0xFFFF) as f64)]
    }

    #[test]
    fn watchdog_turns_hung_job_into_typed_error() {
        let campaign = fake_campaign(3);
        let mut progress = Counting::default();
        let results = execute_watchdog_with(&campaign, 2, 100, &mut progress, |spec| {
            if spec.ratio == 3.0 {
                // Simulated hang: far longer than the watchdog. The thread
                // is abandoned and dies with the test process.
                std::thread::sleep(std::time::Duration::from_millis(10_000));
            }
            spec_metric_static(spec)
        });
        assert!(matches!(results[0].0, JobOutcome::Ok(_)));
        assert!(matches!(results[2].0, JobOutcome::Ok(_)));
        let JobOutcome::TimedOut(msg) = &results[1].0 else {
            panic!("hung job not timed out: {:?}", results[1].0)
        };
        assert!(msg.contains("watchdog"), "typed timeout message: {msg}");
        assert_eq!(progress.finished, 3, "campaign completed despite the hang");
        assert_eq!(progress.failed, 1);
        // Timed-out outcomes land in the artifact as failed records.
        let artifact = Artifact::from_outcomes(&campaign, &results);
        assert!(!artifact.jobs[1].is_ok());
        assert!(artifact.jobs[0].is_ok() && artifact.jobs[2].is_ok());
    }

    #[test]
    fn watchdog_leaves_fast_jobs_and_panics_untouched() {
        let campaign = fake_campaign(5);
        let plain = execute_with(&campaign, 2, &mut Counting::default(), spec_metric_static);
        let watched = execute_watchdog_with(
            &campaign,
            2,
            60_000,
            &mut Counting::default(),
            spec_metric_static,
        );
        let outcomes =
            |r: &[(JobOutcome, f64)]| r.iter().map(|(o, _)| o.clone()).collect::<Vec<_>>();
        assert_eq!(outcomes(&plain), outcomes(&watched), "generous watchdog changes nothing");

        // Panic isolation survives the detached-thread path.
        let results =
            execute_watchdog_with(&campaign, 2, 60_000, &mut Counting::default(), |spec| {
                assert!(spec.ratio != 4.0, "boom at ratio 4");
                spec_metric_static(spec)
            });
        let JobOutcome::Panicked(msg) = &results[2].0 else {
            panic!("panicking job not isolated: {:?}", results[2].0)
        };
        assert!(msg.contains("boom"));
    }

    #[test]
    fn real_runner_executes_small_campaign() {
        let campaign = Grid::new("exec-smoke", 3)
            .scenarios([Scenario::FioRand])
            .modes([Mode::Osdp, Mode::Hwdp])
            .memory_frames(96)
            .ops(30)
            .expand();
        let artifact = execute_campaign(&campaign, 2, &mut Counting::default());
        assert_eq!(artifact.jobs.len(), 2);
        assert!(artifact.jobs.iter().all(|j| j.is_ok()));
    }
}
