//! Deterministic per-job seed derivation.
//!
//! Every job's simulator seed is a pure function of the campaign seed and
//! the job's index in the expanded grid, so results cannot depend on
//! worker count or scheduling order, and re-running a campaign (or any
//! single job of it) reproduces bit-identical metrics.

/// One SplitMix64 step.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed for job `index` of a campaign seeded with `campaign_seed`.
///
/// Two SplitMix64 steps over a state mixing the campaign seed with the
/// index decorrelate neighbouring jobs (a bare XOR would give correlated
/// low bits across the grid).
pub fn job_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut state = campaign_seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix64(&mut state);
    splitmix64(&mut state)
}

/// The simulator seed for repeat `k` of a job seeded with `job_seed`.
///
/// Repeat 0 is anchored to the job seed itself, so a `repeats = 1` job is
/// byte-identical to the same job without the repeats knob. Later repeats
/// are SplitMix64-derived with a distinct mixing constant from
/// [`job_seed`], keeping the two derivation trees disjoint.
pub fn repeat_seed(job_seed: u64, k: u32) -> u64 {
    if k == 0 {
        return job_seed;
    }
    let mut state = job_seed ^ u64::from(k).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    splitmix64(&mut state);
    splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_function_of_inputs() {
        assert_eq!(job_seed(42, 7), job_seed(42, 7));
        assert_ne!(job_seed(42, 7), job_seed(42, 8));
        assert_ne!(job_seed(42, 7), job_seed(43, 7));
    }

    #[test]
    fn neighbouring_jobs_decorrelated() {
        // Successive jobs of one campaign should differ in roughly half
        // their bits from each other.
        let seeds: Vec<u64> = (0..64).map(|i| job_seed(0xD15C, i)).collect();
        for w in seeds.windows(2) {
            let differing = (w[0] ^ w[1]).count_ones();
            assert!((12..=52).contains(&differing), "{differing} differing bits");
        }
    }

    #[test]
    fn repeat_zero_is_the_job_seed() {
        assert_eq!(repeat_seed(0xD15C, 0), 0xD15C);
        assert_eq!(repeat_seed(0, 0), 0);
    }

    #[test]
    fn repeats_pairwise_distinct_for_small_k() {
        let mut seeds: Vec<u64> = (0..32).map(|k| repeat_seed(42, k)).collect();
        let len = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), len, "repeat seeds collided");
    }

    #[test]
    fn repeat_tree_disjoint_from_job_tree() {
        // repeat k of job j must not collide with job k of the same
        // campaign — the mixing constants differ.
        for i in 0..16u64 {
            assert_ne!(repeat_seed(job_seed(42, 0), i as u32 + 1), job_seed(42, i));
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for state 0 (public reference values).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
    }
}
