//! Live progress reporting for campaign execution.

use crate::spec::JobSpec;

/// Receives execution events. Implementations must be cheap; callbacks run
/// under the executor's result lock.
pub trait Progress: Send {
    /// A worker picked up job `index`.
    fn job_started(&mut self, index: usize, spec: &JobSpec);
    /// Job `index` finished (`ok == false` means it panicked).
    fn job_finished(&mut self, index: usize, spec: &JobSpec, ok: bool, wall_ms: f64);
    /// Job `index` was reused from a prior artifact (`--resume`) and will
    /// not run.
    fn job_skipped(&mut self, _index: usize, _spec: &JobSpec) {}
}

/// Discards all events.
pub struct Silent;

impl Progress for Silent {
    fn job_started(&mut self, _index: usize, _spec: &JobSpec) {}
    fn job_finished(&mut self, _index: usize, _spec: &JobSpec, _ok: bool, _wall_ms: f64) {}
}

/// Prints one line per job completion to stderr (stdout stays clean for
/// piped artifacts).
pub struct Stderr {
    total: usize,
    done: usize,
}

impl Stderr {
    /// Creates a reporter expecting `total` jobs.
    pub fn new(total: usize) -> Stderr {
        Stderr { total, done: 0 }
    }
}

impl Progress for Stderr {
    fn job_started(&mut self, _index: usize, _spec: &JobSpec) {}

    fn job_finished(&mut self, _index: usize, spec: &JobSpec, ok: bool, wall_ms: f64) {
        self.done += 1;
        let status = if ok { "done" } else { "FAILED" };
        eprintln!(
            "[{}/{}] {} {} ({wall_ms:.0} ms)",
            self.done,
            self.total,
            spec.label(),
            status,
        );
    }

    fn job_skipped(&mut self, _index: usize, spec: &JobSpec) {
        self.done += 1;
        eprintln!("[{}/{}] {} reused from prior artifact", self.done, self.total, spec.label());
    }
}

/// Counts events; used by tests.
#[derive(Default)]
pub struct Counting {
    /// Started-event count.
    pub started: usize,
    /// Finished-event count.
    pub finished: usize,
    /// Finished events reporting failure.
    pub failed: usize,
    /// Jobs reused from a prior artifact.
    pub skipped: usize,
}

impl Progress for Counting {
    fn job_started(&mut self, _index: usize, _spec: &JobSpec) {
        self.started += 1;
    }

    fn job_finished(&mut self, _index: usize, _spec: &JobSpec, ok: bool, _wall_ms: f64) {
        self.finished += 1;
        if !ok {
            self.failed += 1;
        }
    }

    fn job_skipped(&mut self, _index: usize, _spec: &JobSpec) {
        self.skipped += 1;
    }
}
