//! The `BENCH_<campaign>.json` result artifact.
//!
//! Schema (version 1):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "campaign": "smoke",
//!   "seed": "0x000000000000002a",
//!   "jobs": [
//!     {
//!       "index": 0,
//!       "status": "ok",
//!       "wall_ms": 12.5,
//!       "config": { "scenario": "fio", "mode": "HWDP", ... },
//!       "metrics": { "elapsed_ns": 1.0e9, "ops": 1500, ... }
//!     }
//!   ]
//! }
//! ```
//!
//! Everything except `wall_ms` is a deterministic function of the campaign
//! definition; [`Artifact::canonical_string`] zeroes the wall-time fields
//! so artifacts from different worker counts (or machines) compare
//! byte-for-byte equal.

use crate::json::{Json, ParseError};
use crate::spec::JobSpec;

/// Artifact schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// How a job ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Completed; metrics are valid.
    Ok,
    /// Panicked; the payload is the panic message.
    Failed(String),
}

/// One job's result inside an artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// Position in the campaign's job list.
    pub index: usize,
    /// The job's full configuration.
    pub spec: JobSpec,
    /// Completion status.
    pub status: JobStatus,
    /// Flattened metrics (empty for failed jobs).
    pub metrics: Vec<(String, f64)>,
    /// Host wall time spent on the job, in milliseconds (not
    /// deterministic; excluded from canonical comparison).
    pub wall_ms: f64,
}

impl JobRecord {
    /// Whether the job completed.
    pub fn is_ok(&self) -> bool {
        self.status == JobStatus::Ok
    }

    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    fn to_json(&self) -> Json {
        let status = match &self.status {
            JobStatus::Ok => Json::str("ok"),
            JobStatus::Failed(msg) => Json::obj([("failed", Json::str(msg.clone()))]),
        };
        // Per-thread metrics (flat `thread/<i>/<name>` keys) render as a
        // `threads` array of objects; everything else stays in `metrics`.
        // Single-thread jobs have no such keys and no `threads` field, so
        // their records are byte-identical to the pre-thread-report schema.
        let mut plain: Vec<(String, Json)> = Vec::new();
        let mut threads: Vec<Vec<(String, Json)>> = Vec::new();
        for (k, v) in &self.metrics {
            match split_thread_key(k) {
                Some((i, name)) => {
                    while threads.len() <= i {
                        threads.push(Vec::new());
                    }
                    threads[i].push((name.to_string(), Json::Num(*v)));
                }
                None => plain.push((k.clone(), Json::Num(*v))),
            }
        }
        let mut fields = vec![
            ("index", Json::Num(self.index as f64)),
            ("status", status),
            ("wall_ms", Json::Num(self.wall_ms)),
            ("config", self.spec.to_json()),
            ("metrics", Json::Obj(plain)),
        ];
        if !threads.is_empty() {
            fields.push(("threads", Json::Arr(threads.into_iter().map(Json::Obj).collect())));
        }
        Json::obj(fields)
    }
}

/// A complete campaign result set.
#[derive(Clone, Debug, PartialEq)]
pub struct Artifact {
    /// Campaign name.
    pub campaign: String,
    /// Campaign master seed.
    pub seed: u64,
    /// Per-job records in campaign order.
    pub jobs: Vec<JobRecord>,
}

impl Artifact {
    /// The conventional file name for this artifact.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.campaign)
    }

    /// Serializes to pretty JSON (with real wall times).
    pub fn to_json_string(&self) -> String {
        self.render(false)
    }

    /// Serializes with every `wall_ms` zeroed: the canonical form used for
    /// determinism checks — byte-identical across worker counts and hosts.
    pub fn canonical_string(&self) -> String {
        self.render(true)
    }

    fn render(&self, canonical: bool) -> String {
        let jobs = self
            .jobs
            .iter()
            .map(|j| {
                if canonical {
                    let mut j = j.clone();
                    j.wall_ms = 0.0;
                    j.to_json()
                } else {
                    j.to_json()
                }
            })
            .collect();
        Json::obj([
            ("schema", Json::Num(SCHEMA_VERSION as f64)),
            ("campaign", Json::str(self.campaign.clone())),
            ("seed", Json::Str(format!("{:#018x}", self.seed))),
            ("jobs", Json::Arr(jobs)),
        ])
        .pretty()
    }

    /// Parses an artifact back from JSON text (e.g. a stored baseline).
    ///
    /// Only the fields the comparator needs are reconstructed
    /// structurally; job configs are re-read for labels, and metrics in
    /// full.
    pub fn parse(text: &str) -> Result<Artifact, ParseError> {
        let root = Json::parse(text)?;
        let bad = |msg: &str| ParseError { offset: 0, message: msg.to_string() };
        let schema = root.get("schema").and_then(Json::as_f64).ok_or_else(|| bad("missing schema"))?;
        if schema as u64 != SCHEMA_VERSION {
            return Err(bad(&format!("unsupported schema version {schema}")));
        }
        let campaign = root
            .get("campaign")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing campaign name"))?
            .to_string();
        let seed = parse_hex_seed(root.get("seed").and_then(Json::as_str))
            .ok_or_else(|| bad("missing or malformed seed"))?;
        let jobs_json = root.get("jobs").and_then(Json::as_arr).ok_or_else(|| bad("missing jobs"))?;
        let mut jobs = Vec::with_capacity(jobs_json.len());
        for (i, j) in jobs_json.iter().enumerate() {
            jobs.push(parse_job(j, i).map_err(|msg| bad(&format!("job {i}: {msg}")))?);
        }
        Ok(Artifact { campaign, seed, jobs })
    }
}

fn parse_hex_seed(s: Option<&str>) -> Option<u64> {
    let s = s?.strip_prefix("0x")?;
    u64::from_str_radix(s, 16).ok()
}

/// Splits a flat per-thread metric key `thread/<i>/<name>` into
/// `(i, name)`; `None` for ordinary metric names.
fn split_thread_key(key: &str) -> Option<(usize, &str)> {
    let rest = key.strip_prefix("thread/")?;
    let (index, name) = rest.split_once('/')?;
    Some((index.parse().ok()?, name))
}

fn parse_job(j: &Json, fallback_index: usize) -> Result<JobRecord, String> {
    use crate::spec::{DeviceKind, Scenario};
    use hwdp_core::Mode;

    let index = j.get("index").and_then(Json::as_f64).map_or(fallback_index, |n| n as usize);
    let status = match j.get("status") {
        Some(Json::Str(s)) if s == "ok" => JobStatus::Ok,
        Some(obj) => JobStatus::Failed(
            obj.get("failed").and_then(Json::as_str).unwrap_or("unknown failure").to_string(),
        ),
        None => return Err("missing status".into()),
    };
    let wall_ms = j.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
    let cfg = j.get("config").ok_or("missing config")?;
    let req_str = |key: &str| cfg.get(key).and_then(Json::as_str).ok_or(format!("missing {key}"));
    let req_num = |key: &str| cfg.get(key).and_then(Json::as_f64).ok_or(format!("missing {key}"));
    let opt_num = |key: &str| cfg.get(key).and_then(Json::as_f64);

    let scenario = Scenario::parse(req_str("scenario")?).ok_or("unknown scenario")?;
    let mode = match req_str("mode")? {
        "OSDP" => Mode::Osdp,
        "HWDP" => Mode::Hwdp,
        "SW-only" => Mode::SwOnly,
        other => return Err(format!("unknown mode {other}")),
    };
    let device = DeviceKind::parse(req_str("device")?)?;
    let seed = parse_hex_seed(cfg.get("seed").and_then(Json::as_str)).ok_or("malformed seed")?;

    let spec = JobSpec {
        scenario,
        mode,
        device,
        threads: req_num("threads")? as usize,
        pin: opt_num("pin").map(|n| n as usize),
        repeats: opt_num("repeats").map_or(1, |n| n as u32),
        ratio: req_num("ratio")?,
        memory_frames: req_num("memory_frames")? as usize,
        ops: req_num("ops")? as u64,
        pmshr_entries: opt_num("pmshr_entries").map(|n| n as usize),
        free_queue_depth: opt_num("free_queue_depth").map(|n| n as usize),
        kpoold_enabled: matches!(cfg.get("kpoold_enabled"), Some(Json::Bool(true))),
        kpoold_period_us: opt_num("kpoold_period_us").map(|n| n as u64),
        kpted_period_us: req_num("kpted_period_us")? as u64,
        readahead_pages: req_num("readahead_pages")? as usize,
        smu_prefetch_pages: req_num("smu_prefetch_pages")? as usize,
        per_core_free_queues: matches!(cfg.get("per_core_free_queues"), Some(Json::Bool(true))),
        long_io_timeout_us: opt_num("long_io_timeout_us").map(|n| n as u64),
        time_cap_ms: req_num("time_cap_ms")? as u64,
        faults: match cfg.get("faults").and_then(Json::as_str) {
            Some(s) => Some(
                hwdp_nvme::fault::FaultConfig::parse(s)
                    .ok_or(format!("malformed faults: {s}"))?,
            ),
            None => None,
        },
        tiers: match cfg.get("tiers").and_then(Json::as_str) {
            Some(s) => Some(
                crate::spec::TierSpec::parse(s)
                    .map_err(|e| format!("malformed tiers: {e}"))?,
            ),
            None => None,
        },
        seed,
        // Not serialized (observation-only knob); parsed specs default to
        // no sanitizing.
        sanitize: hwdp_sim::SanitizeLevel::Off,
    };

    let mut metrics: Vec<(String, f64)> = match j.get("metrics") {
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
            .collect(),
        _ => Vec::new(),
    };
    // Fold the `threads` array back into flat `thread/<i>/<name>` keys.
    // The runner always appends per-thread keys after plain metrics, so
    // appending here round-trips the metric vector exactly.
    if let Some(Json::Arr(threads)) = j.get("threads") {
        for (i, t) in threads.iter().enumerate() {
            if let Json::Obj(pairs) = t {
                for (k, v) in pairs {
                    if let Some(n) = v.as_f64() {
                        metrics.push((format!("thread/{i}/{k}"), n));
                    }
                }
            }
        }
    }
    Ok(JobRecord { index, spec, status, metrics, wall_ms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DeviceKind, Scenario};
    use hwdp_core::Mode;

    fn sample() -> Artifact {
        let mut spec = JobSpec::new(Scenario::Ycsb(hwdp_workloads::YcsbKind::C), Mode::Hwdp, 0xABCD_EF01_2345_6789);
        spec.device = DeviceKind::OptaneSsd;
        spec.pmshr_entries = Some(64);
        spec.long_io_timeout_us = Some(25);
        Artifact {
            campaign: "unit".into(),
            seed: 42,
            jobs: vec![
                JobRecord {
                    index: 0,
                    spec,
                    status: JobStatus::Ok,
                    metrics: vec![("ops".into(), 1500.0), ("user_ipc".into(), 1.25)],
                    wall_ms: 12.5,
                },
                JobRecord {
                    index: 1,
                    spec: JobSpec::new(Scenario::FioRand, Mode::Osdp, 7),
                    status: JobStatus::Failed("boom".into()),
                    metrics: Vec::new(),
                    wall_ms: 3.0,
                },
            ],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let a = sample();
        let parsed = Artifact::parse(&a.to_json_string()).unwrap();
        assert_eq!(parsed, a);
    }

    /// The canonical spec-knob round-trip: every `JobSpec` field is set to a
    /// non-default value and must survive serialize → parse exactly. Adding
    /// a knob without extending this test trips `spec-knob-consistency`.
    #[test]
    fn every_knob_round_trips_through_json() {
        let mut spec = JobSpec::new(Scenario::FioRand, Mode::Hwdp, 0x99);
        spec.device = DeviceKind::OptanePmm;
        spec.threads = 3;
        spec.pin = Some(2);
        spec.repeats = 4;
        spec.ratio = 8.0;
        spec.memory_frames = 2048;
        spec.ops = 555;
        spec.pmshr_entries = Some(16);
        spec.free_queue_depth = Some(12);
        spec.kpoold_enabled = false;
        spec.kpoold_period_us = Some(750);
        spec.kpted_period_us = 20_000;
        spec.readahead_pages = 8;
        spec.smu_prefetch_pages = 4;
        spec.per_core_free_queues = true;
        spec.long_io_timeout_us = Some(50);
        spec.time_cap_ms = 1234;
        let a = Artifact {
            campaign: "knobs".into(),
            seed: 0x99,
            jobs: vec![JobRecord {
                index: 0,
                spec,
                status: JobStatus::Ok,
                metrics: Vec::new(),
                wall_ms: 0.0,
            }],
        };
        let parsed = Artifact::parse(&a.to_json_string()).unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn canonical_form_zeroes_wall_time_only() {
        let a = sample();
        let mut b = a.clone();
        b.jobs[0].wall_ms = 9999.0;
        assert_ne!(a.to_json_string(), b.to_json_string());
        assert_eq!(a.canonical_string(), b.canonical_string());
    }

    #[test]
    fn file_name_follows_convention() {
        assert_eq!(sample().file_name(), "BENCH_unit.json");
    }

    #[test]
    fn tiers_round_trip_and_stay_absent_when_unset() {
        let mut a = sample();
        a.jobs[0].spec.tiers =
            Some(crate::spec::TierSpec::parse("fast:pmm,slow:zssd,cap:10").unwrap());
        let text = a.to_json_string();
        assert!(text.contains("\"tiers\": \"fast:pmm,slow:zssd,cap:10\""));
        let parsed = Artifact::parse(&text).unwrap();
        assert_eq!(parsed, a);
        // The tierless job in the same artifact carries no tiers field.
        let tierless = sample();
        assert!(!tierless.to_json_string().contains("tiers"));
    }

    #[test]
    fn seed_survives_full_u64_range() {
        let mut a = sample();
        a.jobs[0].spec.seed = u64::MAX;
        a.seed = u64::MAX - 3;
        let parsed = Artifact::parse(&a.to_json_string()).unwrap();
        assert_eq!(parsed.jobs[0].spec.seed, u64::MAX);
        assert_eq!(parsed.seed, u64::MAX - 3);
    }

    #[test]
    fn per_thread_metrics_round_trip_through_threads_array() {
        let mut a = sample();
        a.jobs[0].metrics = vec![
            ("ops".into(), 300.0),
            ("user_ipc".into(), 1.4),
            ("thread/0/ops".into(), 150.0),
            ("thread/0/user_ipc".into(), 1.5),
            ("thread/1/ops".into(), 150.0),
            ("thread/1/user_ipc".into(), 1.3),
        ];
        let text = a.to_json_string();
        assert!(text.contains("\"threads\": ["), "multi-thread jobs grow a threads array");
        assert!(!text.contains("thread/0"), "flat keys are structured, not copied verbatim");
        let parsed = Artifact::parse(&text).unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn jobs_without_thread_metrics_have_no_threads_field() {
        let a = sample();
        assert!(!a.to_json_string().contains("\"threads\": ["));
    }

    #[test]
    fn pin_and_repeats_round_trip() {
        let mut a = sample();
        a.jobs[0].spec.pin = Some(2);
        a.jobs[0].spec.repeats = 5;
        let parsed = Artifact::parse(&a.to_json_string()).unwrap();
        assert_eq!(parsed.jobs[0].spec.pin, Some(2));
        assert_eq!(parsed.jobs[0].spec.repeats, 5);
        assert_eq!(parsed, a);
    }

    #[test]
    fn smt_corun_scenario_round_trips() {
        let mut a = sample();
        a.jobs[1].spec.scenario = Scenario::SmtCorun(crate::spec::SmtPartner::Xz);
        let parsed = Artifact::parse(&a.to_json_string()).unwrap();
        assert_eq!(parsed.jobs[1].spec.scenario, a.jobs[1].spec.scenario);
    }

    #[test]
    fn absent_pin_and_repeats_default_on_parse() {
        // Identity-exclusion: old artifacts (no pin/repeats fields) parse
        // to specs equal to freshly built defaults.
        let a = sample();
        let text = a.to_json_string();
        assert!(!text.contains("\"pin\""));
        assert!(!text.contains("\"repeats\""));
        let parsed = Artifact::parse(&text).unwrap();
        assert_eq!(parsed.jobs[0].spec.pin, None);
        assert_eq!(parsed.jobs[0].spec.effective_repeats(), 1);
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let text = sample().to_json_string().replace("\"schema\": 1", "\"schema\": 99");
        assert!(Artifact::parse(&text).is_err());
    }

    #[test]
    fn metric_lookup() {
        let a = sample();
        assert_eq!(a.jobs[0].metric("ops"), Some(1500.0));
        assert_eq!(a.jobs[0].metric("nope"), None);
        assert!(a.jobs[0].is_ok());
        assert!(!a.jobs[1].is_ok());
    }
}
