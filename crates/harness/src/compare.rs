//! Baseline comparison and regression gating.
//!
//! Jobs are matched between a baseline artifact and a current artifact by
//! configuration (not index), then gate metrics are compared with
//! direction-aware relative thresholds: a drop in a higher-is-better
//! metric (throughput, IPC) or a rise in a lower-is-better metric
//! (latency, instruction counts) beyond the threshold is a regression.

use crate::artifact::Artifact;
use crate::spec::JobSpec;

/// Comparison thresholds.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Maximum tolerated relative change in the bad direction
    /// (0.05 = 5 %).
    pub relative: f64,
    /// Ignore absolute changes smaller than this (filters noise on
    /// near-zero metrics like stall counts).
    pub absolute: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds { relative: 0.05, absolute: 1e-9 }
    }
}

/// Which way a metric is "good".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Bigger is better (throughput, IPC).
    HigherBetter,
    /// Smaller is better (latency, faults, instructions).
    LowerBetter,
    /// Bigger is better, but the metric is wall-clock dependent (machine
    /// noise, not simulated behaviour), so it reports as advisory and
    /// never gates.
    AdvisoryHigherBetter,
    /// Config echo or neutral count; never gates.
    Informational,
}

/// Classifies a metric name into a comparison direction.
///
/// Unknown metrics are informational — the gate only acts on metrics it
/// understands, so adding new exports can't spuriously fail CI.
pub fn direction(name: &str) -> Direction {
    // Namespaced keys never gate directly: `sanitize/...` violation
    // counts gate the sweep itself, `thread/...` detail is covered by the
    // aggregates, and `<metric>/stddev` + `<metric>/ci95` spread keys feed
    // the CI-overlap test on their base metric instead.
    if name.contains('/') {
        return Direction::Informational;
    }
    match name {
        // Scheduler throughput (the opt-in `HWDP_THROUGHPUT` export)
        // divides a deterministic event count by measured wall time:
        // direction-aware for reporting, but never a CI gate.
        "events_per_sec" => Direction::AdvisoryHigherBetter,
        "throughput_ops_s" | "user_ipc" => Direction::HigherBetter,
        "verify_failures"
        | "sync_refill_faults"
        | "pmshr_stalls"
        | "minor_faults"
        | "major_faults"
        | "user_instructions"
        | "kernel_instructions"
        | "user_cycles"
        | "kernel_cycles"
        | "app_kernel_instr"
        | "kpted_instr"
        | "kpoold_instr" => Direction::LowerBetter,
        n if n.starts_with("anatomy_") && n.ends_with("_ns") => Direction::LowerBetter,
        n if n.contains("_lat_") && !n.ends_with("_count") => Direction::LowerBetter,
        _ => Direction::Informational,
    }
}

/// One metric that moved beyond threshold in the bad direction.
#[derive(Clone, Debug)]
pub struct Regression {
    /// Label of the affected job.
    pub job: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed relative change (`(current - baseline) / |baseline|`).
    pub change: f64,
}

/// The outcome of comparing two artifacts.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Jobs present in both artifacts and compared.
    pub matched_jobs: usize,
    /// Baseline jobs with no counterpart in the current artifact.
    pub missing_jobs: Vec<String>,
    /// Current jobs that failed (panicked) — always gate.
    pub failed_jobs: Vec<String>,
    /// Metrics that regressed beyond threshold.
    pub regressions: Vec<Regression>,
    /// Metrics that improved beyond threshold (informational).
    pub improvements: Vec<Regression>,
    /// Advisory metrics (wall-clock dependent, e.g. `events_per_sec`)
    /// that moved beyond threshold in either direction; never gate.
    pub advisories: Vec<Regression>,
}

impl CompareReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing_jobs.is_empty() && self.failed_jobs.is_empty()
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("compared {} job(s)\n", self.matched_jobs));
        for j in &self.missing_jobs {
            out.push_str(&format!("MISSING  {j}: baseline job absent from current artifact\n"));
        }
        for j in &self.failed_jobs {
            out.push_str(&format!("FAILED   {j}: job did not complete\n"));
        }
        for r in &self.regressions {
            out.push_str(&format!(
                "REGRESS  {}: {} {} -> {} ({:+.1}%)\n",
                r.job,
                r.metric,
                fmt(r.baseline),
                fmt(r.current),
                r.change * 100.0
            ));
        }
        for r in &self.improvements {
            out.push_str(&format!(
                "improve  {}: {} {} -> {} ({:+.1}%)\n",
                r.job,
                r.metric,
                fmt(r.baseline),
                fmt(r.current),
                r.change * 100.0
            ));
        }
        for r in &self.advisories {
            out.push_str(&format!(
                "advisory {}: {} {} -> {} ({:+.1}%)\n",
                r.job,
                r.metric,
                fmt(r.baseline),
                fmt(r.current),
                r.change * 100.0
            ));
        }
        out.push_str(if self.passed() { "PASS\n" } else { "FAIL\n" });
        out
    }
}

fn fmt(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Key used to match jobs across artifacts: the full config minus the
/// derived seed (which legitimately differs if grid axes were reordered).
fn match_key(spec: &JobSpec) -> String {
    format!(
        "{}|{}|{}|t{}|p{:?}|x{}|r{}|m{}|o{}|{:?}|{:?}|{}|{:?}|k{}|ra{}|sp{}|{}|{:?}|c{}",
        spec.scenario.name(),
        spec.mode.label(),
        spec.device.name(),
        spec.threads,
        spec.pin,
        spec.effective_repeats(),
        spec.ratio,
        spec.memory_frames,
        spec.ops,
        spec.pmshr_entries,
        spec.free_queue_depth,
        spec.kpoold_enabled,
        spec.kpoold_period_us,
        spec.kpted_period_us,
        spec.readahead_pages,
        spec.smu_prefetch_pages,
        spec.per_core_free_queues,
        spec.long_io_timeout_us,
        spec.time_cap_ms,
    )
}

/// Compares `current` against `baseline`.
pub fn compare(baseline: &Artifact, current: &Artifact, thresholds: &Thresholds) -> CompareReport {
    let mut report = CompareReport::default();
    for base_job in &baseline.jobs {
        let key = match_key(&base_job.spec);
        let Some(cur_job) = current.jobs.iter().find(|j| match_key(&j.spec) == key) else {
            report.missing_jobs.push(base_job.spec.label());
            continue;
        };
        if !cur_job.is_ok() {
            report.failed_jobs.push(cur_job.spec.label());
            continue;
        }
        if !base_job.is_ok() {
            // A job that failed at baseline-capture time has nothing to
            // gate against; its current success is the improvement.
            continue;
        }
        report.matched_jobs += 1;
        for (name, base_val) in &base_job.metrics {
            let dir = direction(name);
            if dir == Direction::Informational {
                continue;
            }
            let Some(cur_val) = cur_job.metric(name) else { continue };
            let delta = cur_val - base_val;
            if delta.abs() <= thresholds.absolute {
                continue;
            }
            let rel = if *base_val != 0.0 {
                delta / base_val.abs()
            } else {
                // From exactly zero, any growth is infinite relative
                // change; treat as 100 %.
                1.0_f64.copysign(delta)
            };
            // Jobs run with repeats > 1 carry a `<metric>/ci95` key per
            // metric; when either side has one, statistical overlap
            // replaces the raw relative threshold: non-overlapping 95 %
            // intervals are a significant change (whatever its size),
            // overlapping intervals are within noise (whatever the delta).
            let ci_key = format!("{name}/ci95");
            let base_ci = base_job.metric(&ci_key);
            let cur_ci = cur_job.metric(&ci_key);
            if base_ci.is_some() || cur_ci.is_some() {
                let bci = base_ci.unwrap_or(0.0);
                let cci = cur_ci.unwrap_or(0.0);
                let overlap = base_val - bci <= cur_val + cci && cur_val - cci <= base_val + bci;
                if overlap {
                    continue;
                }
            } else if rel.abs() <= thresholds.relative {
                continue;
            }
            let bad = match dir {
                Direction::HigherBetter => rel < 0.0,
                Direction::LowerBetter => rel > 0.0,
                Direction::AdvisoryHigherBetter | Direction::Informational => false,
            };
            let entry = Regression {
                job: cur_job.spec.label(),
                metric: name.clone(),
                baseline: *base_val,
                current: cur_val,
                change: rel,
            };
            if dir == Direction::AdvisoryHigherBetter {
                report.advisories.push(entry);
            } else if bad {
                report.regressions.push(entry);
            } else {
                report.improvements.push(entry);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{JobRecord, JobStatus};
    use crate::spec::Scenario;
    use hwdp_core::Mode;

    fn artifact(metrics: Vec<(&str, f64)>) -> Artifact {
        Artifact {
            campaign: "t".into(),
            seed: 1,
            jobs: vec![JobRecord {
                index: 0,
                spec: JobSpec::new(Scenario::FioRand, Mode::Hwdp, 5),
                status: JobStatus::Ok,
                metrics: metrics.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
                wall_ms: 1.0,
            }],
        }
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = artifact(vec![("throughput_ops_s", 1000.0), ("miss_lat_mean_ns", 500.0)]);
        let report = compare(&a, &a.clone(), &Thresholds::default());
        assert!(report.passed());
        assert_eq!(report.matched_jobs, 1);
    }

    #[test]
    fn throughput_drop_is_a_regression() {
        let base = artifact(vec![("throughput_ops_s", 1000.0)]);
        let cur = artifact(vec![("throughput_ops_s", 900.0)]);
        let report = compare(&base, &cur, &Thresholds::default());
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        assert!((report.regressions[0].change + 0.1).abs() < 1e-9);
    }

    #[test]
    fn latency_rise_is_a_regression_but_drop_is_improvement() {
        let base = artifact(vec![("miss_lat_mean_ns", 500.0)]);
        let worse = artifact(vec![("miss_lat_mean_ns", 600.0)]);
        let better = artifact(vec![("miss_lat_mean_ns", 400.0)]);
        assert!(!compare(&base, &worse, &Thresholds::default()).passed());
        let r = compare(&base, &better, &Thresholds::default());
        assert!(r.passed());
        assert_eq!(r.improvements.len(), 1);
    }

    #[test]
    fn small_changes_within_threshold_pass() {
        let base = artifact(vec![("throughput_ops_s", 1000.0)]);
        let cur = artifact(vec![("throughput_ops_s", 970.0)]); // -3% < 5%
        assert!(compare(&base, &cur, &Thresholds::default()).passed());
        // But a tighter threshold catches it.
        let tight = Thresholds { relative: 0.01, absolute: 1e-9 };
        assert!(!compare(&base, &cur, &tight).passed());
    }

    #[test]
    fn informational_metrics_never_gate() {
        let base = artifact(vec![("ops", 100.0), ("smu_coalesced", 5.0)]);
        let cur = artifact(vec![("ops", 9.0), ("smu_coalesced", 500.0)]);
        assert!(compare(&base, &cur, &Thresholds::default()).passed());
    }

    #[test]
    fn events_per_sec_is_advisory_and_never_gates() {
        // A 10x collapse in scheduler throughput is machine noise as far
        // as CI is concerned: reported as advisory, never a failure.
        let base = artifact(vec![("events_per_sec", 1_000_000.0), ("events_processed", 5000.0)]);
        let cur = artifact(vec![("events_per_sec", 100_000.0), ("events_processed", 5000.0)]);
        let report = compare(&base, &cur, &Thresholds::default());
        assert!(report.passed(), "wall-clock throughput must never gate");
        assert!(report.regressions.is_empty());
        assert_eq!(report.advisories.len(), 1);
        assert_eq!(report.advisories[0].metric, "events_per_sec");
        assert!(report.advisories[0].change < 0.0, "direction-aware: this one dropped");
        let text = report.render();
        assert!(text.contains("advisory"));
        assert!(text.contains("PASS"));
        // The raw event count is a deterministic config echo: informational.
        assert_eq!(direction("events_processed"), Direction::Informational);
    }

    #[test]
    fn growth_from_zero_regresses() {
        let base = artifact(vec![("verify_failures", 0.0)]);
        let cur = artifact(vec![("verify_failures", 2.0)]);
        assert!(!compare(&base, &cur, &Thresholds::default()).passed());
    }

    #[test]
    fn failed_current_job_gates() {
        let base = artifact(vec![("throughput_ops_s", 1000.0)]);
        let mut cur = base.clone();
        cur.jobs[0].status = JobStatus::Failed("panic".into());
        let report = compare(&base, &cur, &Thresholds::default());
        assert!(!report.passed());
        assert_eq!(report.failed_jobs.len(), 1);
    }

    #[test]
    fn missing_job_gates() {
        let base = artifact(vec![("throughput_ops_s", 1000.0)]);
        let mut cur = base.clone();
        cur.jobs.clear();
        assert!(!compare(&base, &cur, &Thresholds::default()).passed());
    }

    #[test]
    fn matching_ignores_derived_seed() {
        let base = artifact(vec![("throughput_ops_s", 1000.0)]);
        let mut cur = base.clone();
        cur.jobs[0].spec.seed = 0xFFFF;
        cur.jobs[0].metrics[0].1 = 1001.0;
        assert!(compare(&base, &cur, &Thresholds::default()).passed());
    }

    #[test]
    fn render_mentions_verdict() {
        let base = artifact(vec![("user_ipc", 2.0)]);
        let cur = artifact(vec![("user_ipc", 1.0)]);
        let text = compare(&base, &cur, &Thresholds::default()).render();
        assert!(text.contains("REGRESS"));
        assert!(text.contains("FAIL"));
        let ok = compare(&base, &base.clone(), &Thresholds::default()).render();
        assert!(ok.contains("PASS"));
    }

    #[test]
    fn direction_classification() {
        assert_eq!(direction("throughput_ops_s"), Direction::HigherBetter);
        assert_eq!(direction("miss_lat_p99_ns"), Direction::LowerBetter);
        assert_eq!(direction("miss_lat_count"), Direction::Informational);
        assert_eq!(direction("anatomy_total_ns"), Direction::LowerBetter);
        assert_eq!(direction("brand_new_metric"), Direction::Informational);
        // Namespaced keys never gate directly: spreads feed the CI test,
        // per-thread detail is covered by aggregates.
        assert_eq!(direction("user_ipc/stddev"), Direction::Informational);
        assert_eq!(direction("miss_lat_mean_ns/ci95"), Direction::Informational);
        assert_eq!(direction("thread/0/user_ipc"), Direction::Informational);
        assert_eq!(direction("sanitize/mem/pte-roundtrip"), Direction::Informational);
    }

    #[test]
    fn overlapping_cis_suppress_large_deltas() {
        // -10 % throughput would trip the 5 % raw gate, but the repeats
        // say the metric is noisy: intervals [850, 1150] and [750, 1050]
        // overlap, so the change is within noise and the gate passes.
        let base = artifact(vec![("throughput_ops_s", 1000.0), ("throughput_ops_s/ci95", 150.0)]);
        let cur = artifact(vec![("throughput_ops_s", 900.0), ("throughput_ops_s/ci95", 150.0)]);
        assert!(compare(&base, &cur, &Thresholds::default()).passed());
    }

    #[test]
    fn disjoint_cis_gate_even_small_deltas() {
        // -3 % would pass the raw 5 % gate, but tight intervals
        // [995, 1005] and [965, 975] are disjoint: a real regression.
        let base = artifact(vec![("throughput_ops_s", 1000.0), ("throughput_ops_s/ci95", 5.0)]);
        let cur = artifact(vec![("throughput_ops_s", 970.0), ("throughput_ops_s/ci95", 5.0)]);
        let report = compare(&base, &cur, &Thresholds::default());
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
    }

    #[test]
    fn disjoint_cis_in_good_direction_are_improvements() {
        let base = artifact(vec![("miss_lat_mean_ns", 500.0), ("miss_lat_mean_ns/ci95", 5.0)]);
        let cur = artifact(vec![("miss_lat_mean_ns", 400.0), ("miss_lat_mean_ns/ci95", 5.0)]);
        let report = compare(&base, &cur, &Thresholds::default());
        assert!(report.passed());
        assert_eq!(report.improvements.len(), 1);
    }

    #[test]
    fn one_sided_ci_still_engages_overlap_gating() {
        // Baseline captured without repeats (no CI), current run with
        // repeats: the baseline point value is treated as a zero-width
        // interval.
        let base = artifact(vec![("throughput_ops_s", 1000.0)]);
        let inside = artifact(vec![("throughput_ops_s", 900.0), ("throughput_ops_s/ci95", 150.0)]);
        assert!(compare(&base, &inside, &Thresholds::default()).passed());
        let outside = artifact(vec![("throughput_ops_s", 900.0), ("throughput_ops_s/ci95", 10.0)]);
        assert!(!compare(&base, &outside, &Thresholds::default()).passed());
    }

    #[test]
    fn matching_distinguishes_pin_and_repeats() {
        let base = artifact(vec![("throughput_ops_s", 1000.0)]);
        let mut cur = base.clone();
        cur.jobs[0].spec.pin = Some(0);
        assert!(!compare(&base, &cur, &Thresholds::default()).passed(), "pin changes identity");
        let mut cur = base.clone();
        cur.jobs[0].spec.repeats = 3;
        assert!(
            !compare(&base, &cur, &Thresholds::default()).passed(),
            "repeat count changes identity"
        );
        let mut cur = base.clone();
        cur.jobs[0].spec.repeats = 0; // normalizes to 1
        assert!(compare(&base, &cur, &Thresholds::default()).passed());
    }
}
