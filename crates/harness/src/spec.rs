//! Campaign and job specifications.
//!
//! A [`Campaign`] is a named, seeded list of [`JobSpec`]s. The [`Grid`]
//! builder expands axis lists (scenario × mode × device × threads × ratio)
//! into that list in a fixed nesting order, deriving each job's simulator
//! seed from the campaign seed and the job's index ([`crate::seed`]).

use crate::json::Json;
use crate::seed::job_seed;
use hwdp_core::Mode;
use hwdp_nvme::fault::FaultConfig;
use hwdp_nvme::profile::DeviceProfile;
use hwdp_sim::time::Duration;
use hwdp_sim::SanitizeLevel;
use hwdp_tier::PolicyKind;
use hwdp_workloads::{SpecProfile, YcsbKind};

/// The SPEC CPU 2017 kernel co-located with FIO in the Fig. 16 SMT
/// co-run scenario. Variant order matches `SpecProfile::ALL`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SmtPartner {
    /// perlbench (base IPC 2.0).
    Perlbench,
    /// gcc (1.7).
    Gcc,
    /// mcf (0.9).
    Mcf,
    /// lbm (1.1).
    Lbm,
    /// deepsjeng (1.6).
    Deepsjeng,
    /// xz (1.3).
    Xz,
}

impl SmtPartner {
    /// All partners, in `SpecProfile::ALL` order.
    pub const ALL: [SmtPartner; 6] = [
        SmtPartner::Perlbench,
        SmtPartner::Gcc,
        SmtPartner::Mcf,
        SmtPartner::Lbm,
        SmtPartner::Deepsjeng,
        SmtPartner::Xz,
    ];

    /// The SPEC benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            SmtPartner::Perlbench => "perlbench",
            SmtPartner::Gcc => "gcc",
            SmtPartner::Mcf => "mcf",
            SmtPartner::Lbm => "lbm",
            SmtPartner::Deepsjeng => "deepsjeng",
            SmtPartner::Xz => "xz",
        }
    }

    /// Parses a SPEC benchmark name.
    pub fn parse(s: &str) -> Option<SmtPartner> {
        SmtPartner::ALL.iter().copied().find(|p| p.name() == s)
    }

    /// The workload profile (instruction mix / base IPC) for this partner.
    pub fn profile(self) -> SpecProfile {
        // Variant order mirrors SpecProfile::ALL (pinned by test).
        SpecProfile::ALL[self as usize]
    }
}

/// What a job runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scenario {
    /// FIO 4 KiB random read over an mmapped file (§VI-B).
    FioRand,
    /// DBBench `readrandom` over MiniDB (§VI-C).
    DbBench,
    /// A YCSB core workload over MiniDB (§VI-C).
    Ycsb(YcsbKind),
    /// Anonymous-memory touch loop (zero-fill path).
    Anon,
    /// Fig. 16 SMT co-location: FIO on hardware thread 0 and a SPEC
    /// kernel on hardware thread 1 of a single physical core.
    SmtCorun(SmtPartner),
    /// Closed-form single-miss anatomy (Fig. 10/17); no simulation.
    Anatomy,
}

impl Scenario {
    /// Stable identifier used in artifacts and on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::FioRand => "fio",
            Scenario::DbBench => "dbbench",
            Scenario::Ycsb(k) => k.name(),
            Scenario::Anon => "anon",
            Scenario::SmtCorun(p) => match p {
                SmtPartner::Perlbench => "smt-perlbench",
                SmtPartner::Gcc => "smt-gcc",
                SmtPartner::Mcf => "smt-mcf",
                SmtPartner::Lbm => "smt-lbm",
                SmtPartner::Deepsjeng => "smt-deepsjeng",
                SmtPartner::Xz => "smt-xz",
            },
            Scenario::Anatomy => "anatomy",
        }
    }

    /// Parses a scenario identifier (the inverse of [`Scenario::name`]).
    pub fn parse(s: &str) -> Option<Scenario> {
        match s {
            "fio" => Some(Scenario::FioRand),
            "dbbench" => Some(Scenario::DbBench),
            "anon" => Some(Scenario::Anon),
            "anatomy" => Some(Scenario::Anatomy),
            _ => {
                if let Some(partner) = s.strip_prefix("smt-").and_then(SmtPartner::parse) {
                    return Some(Scenario::SmtCorun(partner));
                }
                YcsbKind::ALL.iter().find(|k| k.name() == s).map(|&k| Scenario::Ycsb(k))
            }
        }
    }

    /// All scenario identifiers, for CLI help text.
    pub const ALL_NAMES: [&'static str; 16] = [
        "fio",
        "dbbench",
        "ycsb-a",
        "ycsb-b",
        "ycsb-c",
        "ycsb-d",
        "ycsb-e",
        "ycsb-f",
        "anon",
        "smt-perlbench",
        "smt-gcc",
        "smt-mcf",
        "smt-lbm",
        "smt-deepsjeng",
        "smt-xz",
        "anatomy",
    ];
}

/// Which device profile a job simulates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceKind {
    /// Samsung Z-SSD (the paper's testbed device).
    ZSsd,
    /// Intel Optane SSD.
    OptaneSsd,
    /// Intel Optane PMM treated as a block device.
    OptanePmm,
}

impl DeviceKind {
    /// Every device kind, in artifact order.
    pub const ALL: [DeviceKind; 3] =
        [DeviceKind::ZSsd, DeviceKind::OptaneSsd, DeviceKind::OptanePmm];

    /// Stable identifier used in artifacts and on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::ZSsd => "zssd",
            DeviceKind::OptaneSsd => "optane",
            DeviceKind::OptanePmm => "pmm",
        }
    }

    /// Parses a device identifier (the inverse of [`DeviceKind::name`],
    /// plus hyphenated aliases). The error names every accepted
    /// identifier, so CLI typos are self-explaining.
    pub fn parse(s: &str) -> Result<DeviceKind, String> {
        match s {
            "zssd" | "z-ssd" => Ok(DeviceKind::ZSsd),
            "optane" | "optane-ssd" => Ok(DeviceKind::OptaneSsd),
            "pmm" | "optane-pmm" => Ok(DeviceKind::OptanePmm),
            other => Err(format!(
                "unknown device '{other}' (accepted: zssd, optane, pmm; \
                 aliases: z-ssd, optane-ssd, optane-pmm)"
            )),
        }
    }

    /// The simulator profile for this device.
    pub fn profile(self) -> DeviceProfile {
        match self {
            DeviceKind::ZSsd => DeviceProfile::Z_SSD,
            DeviceKind::OptaneSsd => DeviceProfile::OPTANE_SSD,
            DeviceKind::OptanePmm => DeviceProfile::OPTANE_PMM,
        }
    }
}

/// Tiered-storage knob: which device profiles form the fast/slow pair
/// plus the migration daemon's parameters. Serialized canonically (like
/// `faults`) so artifacts stay diffable; defaults are omitted from the
/// canonical form.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TierSpec {
    /// Fast-tier device (attached as device 1).
    pub fast: DeviceKind,
    /// Slow-tier device (replaces device 0's profile; data homes here).
    pub slow: DeviceKind,
    /// Fast-tier capacity as a percentage of the tracked pages.
    pub cap_pct: u32,
    /// Placement policy.
    pub policy: PolicyKind,
    /// Migration-daemon wake period in microseconds.
    pub period_us: u64,
    /// Max promotions (and, separately, demotions) per tick.
    pub batch: usize,
}

impl TierSpec {
    const DEFAULT_CAP_PCT: u32 = 25;
    const DEFAULT_PERIOD_US: u64 = 150;
    const DEFAULT_BATCH: usize = 8;

    /// A tier pair with default daemon parameters (25 % capacity,
    /// threshold policy, 150 µs period, batch 8).
    pub fn new(fast: DeviceKind, slow: DeviceKind) -> TierSpec {
        TierSpec {
            fast,
            slow,
            cap_pct: Self::DEFAULT_CAP_PCT,
            policy: PolicyKind::Threshold,
            period_us: Self::DEFAULT_PERIOD_US,
            batch: Self::DEFAULT_BATCH,
        }
    }

    /// Canonical `--tiers` syntax: `fast:<dev>,slow:<dev>` plus any
    /// non-default knob (`cap:<pct>`, `policy:<name>`, `period:<us>`,
    /// `batch:<n>`), in fixed order.
    pub fn canonical(&self) -> String {
        let mut s = format!("fast:{},slow:{}", self.fast.name(), self.slow.name());
        if self.cap_pct != Self::DEFAULT_CAP_PCT {
            s.push_str(&format!(",cap:{}", self.cap_pct));
        }
        if self.policy != PolicyKind::Threshold {
            s.push_str(&format!(",policy:{}", self.policy.name()));
        }
        if self.period_us != Self::DEFAULT_PERIOD_US {
            s.push_str(&format!(",period:{}", self.period_us));
        }
        if self.batch != Self::DEFAULT_BATCH {
            s.push_str(&format!(",batch:{}", self.batch));
        }
        s
    }

    /// Parses the [`TierSpec::canonical`] syntax. `fast:` and `slow:` are
    /// required; the remaining knobs default.
    pub fn parse(s: &str) -> Result<TierSpec, String> {
        let mut fast = None;
        let mut slow = None;
        let mut spec = TierSpec::new(DeviceKind::OptanePmm, DeviceKind::ZSsd);
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| format!("tier knob '{part}' is not key:value"))?;
            match key {
                "fast" => fast = Some(DeviceKind::parse(value)?),
                "slow" => slow = Some(DeviceKind::parse(value)?),
                "cap" => {
                    spec.cap_pct = value
                        .parse()
                        .map_err(|_| format!("tier cap '{value}' is not a percentage"))?
                }
                "policy" => {
                    spec.policy = PolicyKind::parse(value).ok_or_else(|| {
                        format!("unknown tier policy '{value}' (accepted: static, lru, threshold)")
                    })?
                }
                "period" => {
                    spec.period_us = value
                        .parse()
                        .map_err(|_| format!("tier period '{value}' is not microseconds"))?
                }
                "batch" => {
                    spec.batch = value
                        .parse()
                        .map_err(|_| format!("tier batch '{value}' is not a count"))?
                }
                other => {
                    return Err(format!(
                        "unknown tier knob '{other}' (accepted: fast, slow, cap, policy, \
                         period, batch)"
                    ))
                }
            }
        }
        spec.fast = fast.ok_or("tier spec needs fast:<device>")?;
        spec.slow = slow.ok_or("tier spec needs slow:<device>")?;
        Ok(spec)
    }

    /// The simulator-level configuration.
    pub fn to_config(&self) -> hwdp_tier::TierConfig {
        hwdp_tier::TierConfig {
            fast: self.fast.profile(),
            slow: self.slow.profile(),
            cap_pct: self.cap_pct,
            policy: self.policy,
            period: Duration::from_micros(self.period_us),
            batch: self.batch,
        }
    }
}

/// One fully specified experiment.
///
/// Equality ignores [`JobSpec::sanitize`]: sanitizing is observation-only
/// (metrics are byte-identical at any level), so a stored result remains
/// valid for the same job re-run at a different sanitize level — resume
/// matching and baseline comparison must not invalidate it.
#[derive(Clone, Copy, Debug)]
pub struct JobSpec {
    /// Workload scenario.
    pub scenario: Scenario,
    /// Demand-paging mode.
    pub mode: Mode,
    /// Storage device profile.
    pub device: DeviceKind,
    /// Workload threads.
    pub threads: usize,
    /// SMT hardware-context pinning: workload thread `i` is fixed to
    /// hardware context `pin + i` (a co-run partner, if the scenario has
    /// one, lands on `pin + threads`). `None` = scheduler placement.
    pub pin: Option<usize>,
    /// Statistical repeats: the job runs `max(repeats, 1)` times with
    /// SplitMix64-derived per-repeat seeds and reports mean / stddev /
    /// 95 % CI per metric. `1` is a plain single run and is normalized
    /// away (compares equal to, and serializes identically to, a spec
    /// without the knob).
    pub repeats: u32,
    /// Dataset:memory ratio (dataset pages = `memory_frames × ratio`).
    pub ratio: f64,
    /// Simulated DRAM in 4 KiB frames.
    pub memory_frames: usize,
    /// Operations per workload thread.
    pub ops: u64,
    /// PMSHR entries (`None` = paper default).
    pub pmshr_entries: Option<usize>,
    /// Free-page queue depth (`None` = paper default).
    pub free_queue_depth: Option<usize>,
    /// Whether the `kpoold` refill daemon runs.
    pub kpoold_enabled: bool,
    /// `kpoold` wake period in microseconds (`None` = default).
    pub kpoold_period_us: Option<u64>,
    /// `kpted` sync-scan period in microseconds.
    pub kpted_period_us: u64,
    /// OS readahead window in pages.
    pub readahead_pages: usize,
    /// SMU detached-prefetch window in pages.
    pub smu_prefetch_pages: usize,
    /// Per-core free-page queues instead of one shared queue.
    pub per_core_free_queues: bool,
    /// §V long-latency miss timeout in microseconds (`None` = always
    /// stall).
    pub long_io_timeout_us: Option<u64>,
    /// Virtual-time cap in milliseconds.
    pub time_cap_ms: u64,
    /// Deterministic device fault plan (`None` = fault-free). A zero-rate
    /// config is normalized away: it compares equal to `None` and is
    /// omitted from the JSON artifact, because such a run is byte-identical
    /// to a fault-free one.
    pub faults: Option<FaultConfig>,
    /// Tiered-storage configuration (`None` = the single-device system).
    /// Pay-as-you-go like `faults`: omitted from the JSON artifact when
    /// unset, so tierless campaigns stay byte-identical to baselines
    /// captured before the knob existed.
    pub tiers: Option<TierSpec>,
    /// Simulator master seed (derived from the campaign seed).
    pub seed: u64,
    /// hwdp-audit sanitizer level (observation-only; excluded from
    /// equality and the JSON artifact).
    pub sanitize: SanitizeLevel,
}

impl PartialEq for JobSpec {
    fn eq(&self, other: &JobSpec) -> bool {
        self.scenario == other.scenario
            && self.mode == other.mode
            && self.device == other.device
            && self.threads == other.threads
            && self.pin == other.pin
            && self.effective_repeats() == other.effective_repeats()
            && self.ratio == other.ratio
            && self.memory_frames == other.memory_frames
            && self.ops == other.ops
            && self.pmshr_entries == other.pmshr_entries
            && self.free_queue_depth == other.free_queue_depth
            && self.kpoold_enabled == other.kpoold_enabled
            && self.kpoold_period_us == other.kpoold_period_us
            && self.kpted_period_us == other.kpted_period_us
            && self.readahead_pages == other.readahead_pages
            && self.smu_prefetch_pages == other.smu_prefetch_pages
            && self.per_core_free_queues == other.per_core_free_queues
            && self.long_io_timeout_us == other.long_io_timeout_us
            && self.time_cap_ms == other.time_cap_ms
            && self.effective_faults() == other.effective_faults()
            && self.tiers == other.tiers
            && self.seed == other.seed
    }
}

impl JobSpec {
    /// A baseline job: paper-default knobs, `Scale::default()`-compatible
    /// sizing.
    pub fn new(scenario: Scenario, mode: Mode, seed: u64) -> JobSpec {
        JobSpec {
            scenario,
            mode,
            device: DeviceKind::ZSsd,
            threads: 1,
            pin: None,
            repeats: 1,
            ratio: 2.0,
            memory_frames: 1024,
            ops: 1_500,
            pmshr_entries: None,
            free_queue_depth: None,
            kpoold_enabled: true,
            kpoold_period_us: None,
            kpted_period_us: 1_000,
            readahead_pages: 0,
            smu_prefetch_pages: 0,
            per_core_free_queues: false,
            long_io_timeout_us: None,
            time_cap_ms: 30_000,
            faults: None,
            tiers: None,
            seed,
            sanitize: SanitizeLevel::Off,
        }
    }

    /// The fault plan that can actually fire: zero-rate configs normalize
    /// to `None` (they are inert by construction).
    pub fn effective_faults(&self) -> Option<FaultConfig> {
        self.faults.filter(|f| !f.is_zero())
    }

    /// The repeat count that actually applies: `0` normalizes to `1`
    /// (running a job zero times is meaningless).
    pub fn effective_repeats(&self) -> u32 {
        self.repeats.max(1)
    }

    /// Dataset size in pages.
    pub fn dataset_pages(&self) -> u64 {
        ((self.memory_frames as f64) * self.ratio) as u64
    }

    /// A short human-readable label (`fio/HWDP/zssd t=4 r=2`).
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{} t={} r={}",
            self.scenario.name(),
            self.mode.label(),
            self.device.name(),
            self.threads,
            self.ratio
        )
    }

    /// Serializes the full configuration. The seed crosses as a hex
    /// *string* because JSON numbers (f64) lose u64 precision above 2^53.
    pub fn to_json(&self) -> Json {
        let opt_num = |v: Option<u64>| v.map_or(Json::Null, |n| Json::Num(n as f64));
        let mut fields = vec![
            ("scenario", Json::str(self.scenario.name())),
            ("mode", Json::str(self.mode.label())),
            ("device", Json::str(self.device.name())),
            ("threads", Json::Num(self.threads as f64)),
            ("ratio", Json::Num(self.ratio)),
            ("memory_frames", Json::Num(self.memory_frames as f64)),
            ("ops", Json::Num(self.ops as f64)),
            ("pmshr_entries", opt_num(self.pmshr_entries.map(|v| v as u64))),
            ("free_queue_depth", opt_num(self.free_queue_depth.map(|v| v as u64))),
            ("kpoold_enabled", Json::Bool(self.kpoold_enabled)),
            ("kpoold_period_us", opt_num(self.kpoold_period_us)),
            ("kpted_period_us", Json::Num(self.kpted_period_us as f64)),
            ("readahead_pages", Json::Num(self.readahead_pages as f64)),
            ("smu_prefetch_pages", Json::Num(self.smu_prefetch_pages as f64)),
            ("per_core_free_queues", Json::Bool(self.per_core_free_queues)),
            ("long_io_timeout_us", opt_num(self.long_io_timeout_us)),
            ("time_cap_ms", Json::Num(self.time_cap_ms as f64)),
            ("seed", Json::Str(format!("{:#018x}", self.seed))),
        ];
        // Pay-as-you-go knobs: present only when they change behaviour, so
        // artifacts from campaigns that never use them stay byte-identical
        // to baselines captured before the knobs existed.
        if let Some(pin) = self.pin {
            fields.push(("pin", Json::Num(pin as f64)));
        }
        if self.effective_repeats() > 1 {
            fields.push(("repeats", Json::Num(self.effective_repeats() as f64)));
        }
        if let Some(f) = self.effective_faults() {
            fields.push(("faults", Json::Str(f.canonical())));
        }
        if let Some(t) = self.tiers {
            fields.push(("tiers", Json::Str(t.canonical())));
        }
        Json::obj(fields)
    }
}

/// A named, seeded set of jobs.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// Campaign name (becomes `BENCH_<name>.json`).
    pub name: String,
    /// Master seed from which all job seeds derive.
    pub seed: u64,
    /// The jobs, in grid-expansion order.
    pub jobs: Vec<JobSpec>,
}

/// Builds a [`Campaign`] by taking the cross product of axis lists.
///
/// Axes nest in a fixed order — scenario (outermost), mode, device,
/// threads, ratio (innermost) — so job index, and therefore each job's
/// derived seed, is a pure function of the grid definition.
#[derive(Clone, Debug)]
pub struct Grid {
    name: String,
    seed: u64,
    scenarios: Vec<Scenario>,
    modes: Vec<Mode>,
    devices: Vec<DeviceKind>,
    threads: Vec<usize>,
    ratios: Vec<f64>,
    template: JobSpec,
    fixed_seed: bool,
}

impl Grid {
    /// Starts a grid with single-point default axes (fio, HWDP, Z-SSD,
    /// 1 thread, 2:1).
    pub fn new(name: impl Into<String>, seed: u64) -> Grid {
        Grid {
            name: name.into(),
            seed,
            scenarios: vec![Scenario::FioRand],
            modes: vec![Mode::Hwdp],
            devices: vec![DeviceKind::ZSsd],
            threads: vec![1],
            ratios: vec![2.0],
            template: JobSpec::new(Scenario::FioRand, Mode::Hwdp, 0),
            fixed_seed: false,
        }
    }

    /// Sets the scenario axis.
    pub fn scenarios(mut self, s: impl IntoIterator<Item = Scenario>) -> Grid {
        self.scenarios = s.into_iter().collect();
        self
    }

    /// Sets the mode axis.
    pub fn modes(mut self, m: impl IntoIterator<Item = Mode>) -> Grid {
        self.modes = m.into_iter().collect();
        self
    }

    /// Sets the device axis.
    pub fn devices(mut self, d: impl IntoIterator<Item = DeviceKind>) -> Grid {
        self.devices = d.into_iter().collect();
        self
    }

    /// Sets the thread-count axis.
    pub fn threads(mut self, t: impl IntoIterator<Item = usize>) -> Grid {
        self.threads = t.into_iter().collect();
        self
    }

    /// Sets the dataset:memory ratio axis.
    pub fn ratios(mut self, r: impl IntoIterator<Item = f64>) -> Grid {
        self.ratios = r.into_iter().collect();
        self
    }

    /// Sets DRAM frames for every job.
    pub fn memory_frames(mut self, frames: usize) -> Grid {
        self.template.memory_frames = frames;
        self
    }

    /// Sets per-thread operations for every job.
    pub fn ops(mut self, ops: u64) -> Grid {
        self.template.ops = ops;
        self
    }

    /// Sets the virtual-time cap (milliseconds) for every job.
    pub fn time_cap_ms(mut self, ms: u64) -> Grid {
        self.template.time_cap_ms = ms;
        self
    }

    /// Pins every job's workload threads to consecutive hardware contexts
    /// starting at `base` (Fig. 16 SMT placement).
    pub fn pin(mut self, base: usize) -> Grid {
        self.template.pin = Some(base);
        self
    }

    /// Runs every job `k` times with derived per-repeat seeds, reporting
    /// mean / stddev / 95 % CI per metric.
    pub fn repeats(mut self, k: u32) -> Grid {
        self.template.repeats = k;
        self
    }

    /// Applies arbitrary knob edits to the job template (PMSHR size,
    /// queue depth, readahead, …).
    pub fn tweak(mut self, f: impl FnOnce(&mut JobSpec)) -> Grid {
        f(&mut self.template);
        self
    }

    /// Sets the hwdp-audit sanitize level for every job
    /// (observation-only; metrics are unaffected).
    pub fn sanitize(mut self, level: SanitizeLevel) -> Grid {
        self.template.sanitize = level;
        self
    }

    /// Installs a deterministic device fault plan on every job.
    pub fn faults(mut self, cfg: FaultConfig) -> Grid {
        self.template.faults = Some(cfg);
        self
    }

    /// Enables tiered storage on every job.
    pub fn tiers(mut self, spec: TierSpec) -> Grid {
        self.template.tiers = Some(spec);
        self
    }

    /// Gives every job the campaign seed itself instead of a per-index
    /// derived seed. Used when reproducing figure tables whose historical
    /// runs all shared one master seed.
    pub fn fixed_seed(mut self) -> Grid {
        self.fixed_seed = true;
        self
    }

    /// Number of jobs `expand` will produce.
    pub fn len(&self) -> usize {
        self.scenarios.len()
            * self.modes.len()
            * self.devices.len()
            * self.threads.len()
            * self.ratios.len()
    }

    /// Whether any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cross product into a [`Campaign`].
    pub fn expand(self) -> Campaign {
        let mut jobs = Vec::with_capacity(self.len());
        for &scenario in &self.scenarios {
            for &mode in &self.modes {
                for &device in &self.devices {
                    for &threads in &self.threads {
                        for &ratio in &self.ratios {
                            let index = jobs.len() as u64;
                            let mut job = self.template;
                            job.scenario = scenario;
                            job.mode = mode;
                            job.device = device;
                            job.threads = threads;
                            job.ratio = ratio;
                            job.seed = if self.fixed_seed {
                                self.seed
                            } else {
                                job_seed(self.seed, index)
                            };
                            jobs.push(job);
                        }
                    }
                }
            }
        }
        Campaign { name: self.name, seed: self.seed, jobs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for name in Scenario::ALL_NAMES {
            let s = Scenario::parse(name).expect(name);
            assert_eq!(s.name(), name);
        }
        assert!(Scenario::parse("nope").is_none());
    }

    #[test]
    fn device_names_round_trip() {
        for d in DeviceKind::ALL {
            assert_eq!(DeviceKind::parse(d.name()), Ok(d));
        }
        // Hyphenated profile aliases resolve too.
        assert_eq!(DeviceKind::parse("z-ssd"), Ok(DeviceKind::ZSsd));
        assert_eq!(DeviceKind::parse("optane-ssd"), Ok(DeviceKind::OptaneSsd));
        assert_eq!(DeviceKind::parse("optane-pmm"), Ok(DeviceKind::OptanePmm));
        // The error names every accepted identifier.
        let err = DeviceKind::parse("floppy").unwrap_err();
        assert!(err.contains("floppy"));
        for name in ["zssd", "optane", "pmm"] {
            assert!(err.contains(name), "error lists '{name}': {err}");
        }
    }

    #[test]
    fn tier_spec_canonical_round_trips() {
        let t = TierSpec::new(DeviceKind::OptanePmm, DeviceKind::ZSsd);
        assert_eq!(t.canonical(), "fast:pmm,slow:zssd", "defaults are omitted");
        assert_eq!(TierSpec::parse(&t.canonical()), Ok(t));

        let full = TierSpec {
            fast: DeviceKind::OptaneSsd,
            slow: DeviceKind::ZSsd,
            cap_pct: 10,
            policy: PolicyKind::LruEpoch,
            period_us: 500,
            batch: 4,
        };
        assert_eq!(full.canonical(), "fast:optane,slow:zssd,cap:10,policy:lru,period:500,batch:4");
        assert_eq!(TierSpec::parse(&full.canonical()), Ok(full));

        assert!(TierSpec::parse("fast:pmm").is_err(), "slow is required");
        assert!(TierSpec::parse("fast:pmm,slow:zssd,warp:9").is_err(), "unknown knob rejected");
        assert!(TierSpec::parse("fast:floppy,slow:zssd").is_err(), "bad device rejected");
    }

    #[test]
    fn tier_spec_to_config_carries_every_knob() {
        let t = TierSpec::parse("fast:pmm,slow:zssd,cap:30,policy:lru,period:200,batch:2")
            .expect("parses");
        let c = t.to_config();
        assert_eq!(c.fast.name, DeviceProfile::OPTANE_PMM.name);
        assert_eq!(c.slow.name, DeviceProfile::Z_SSD.name);
        assert_eq!(c.cap_pct, 30);
        assert_eq!(c.policy, PolicyKind::LruEpoch);
        assert_eq!(c.period, Duration::from_micros(200));
        assert_eq!(c.batch, 2);
    }

    #[test]
    fn tiers_distinguish_jobs_and_serialize_only_when_set() {
        let a = JobSpec::new(Scenario::FioRand, Mode::Hwdp, 3);
        let mut b = a;
        b.tiers = Some(TierSpec::new(DeviceKind::OptanePmm, DeviceKind::ZSsd));
        assert_ne!(a, b, "tiering changes the simulated system");
        assert_eq!(a.to_json().get("tiers"), None, "tierless jobs omit the field");
        assert_eq!(
            b.to_json().get("tiers").and_then(Json::as_str),
            Some("fast:pmm,slow:zssd"),
            "tiered jobs serialize in --tiers syntax"
        );
    }

    #[test]
    fn grid_tiers_apply_to_every_job() {
        let t = TierSpec::new(DeviceKind::OptanePmm, DeviceKind::ZSsd);
        let c = Grid::new("t", 1).ratios([2.0, 4.0]).tiers(t).expand();
        assert!(c.jobs.iter().all(|j| j.tiers == Some(t)));
    }

    #[test]
    fn grid_expands_full_cross_product() {
        let c = Grid::new("t", 1)
            .scenarios([Scenario::FioRand, Scenario::DbBench])
            .modes([Mode::Osdp, Mode::Hwdp, Mode::SwOnly])
            .threads([1, 4])
            .ratios([2.0, 4.0])
            .expand();
        assert_eq!(c.jobs.len(), 2 * 3 * 2 * 2);
        // Innermost axis (ratio) varies fastest.
        assert_eq!(c.jobs[0].ratio, 2.0);
        assert_eq!(c.jobs[1].ratio, 4.0);
        assert_eq!(c.jobs[0].threads, 1);
        assert_eq!(c.jobs[2].threads, 4);
    }

    #[test]
    fn job_seeds_derive_from_index() {
        let c = Grid::new("t", 99).ratios([2.0, 4.0, 8.0]).expand();
        assert_eq!(c.jobs[0].seed, job_seed(99, 0));
        assert_eq!(c.jobs[2].seed, job_seed(99, 2));
        assert_ne!(c.jobs[0].seed, c.jobs[1].seed);
    }

    #[test]
    fn fixed_seed_grid_shares_master_seed() {
        let c = Grid::new("t", 0xD15C).ratios([2.0, 4.0]).fixed_seed().expand();
        assert!(c.jobs.iter().all(|j| j.seed == 0xD15C));
    }

    #[test]
    fn job_json_carries_seed_as_hex_string() {
        let job = JobSpec::new(Scenario::FioRand, Mode::Hwdp, u64::MAX - 1);
        let j = job.to_json();
        assert_eq!(j.get("seed").and_then(Json::as_str), Some("0xfffffffffffffffe"));
        assert_eq!(j.get("scenario").and_then(Json::as_str), Some("fio"));
        assert_eq!(j.get("pmshr_entries"), Some(&Json::Null));
    }

    #[test]
    fn equality_and_json_ignore_sanitize_level() {
        let a = JobSpec::new(Scenario::FioRand, Mode::Hwdp, 3);
        let mut b = a;
        b.sanitize = SanitizeLevel::Full;
        assert_eq!(a, b, "sanitize is observation-only: results stay reusable");
        assert_eq!(a.to_json().pretty(), b.to_json().pretty(), "artifacts stay byte-identical");
        let mut c = a;
        c.ops += 1;
        assert_ne!(a, c, "simulation-relevant fields still compare");
    }

    #[test]
    fn grid_sanitize_applies_to_every_job() {
        let c = Grid::new("t", 1).ratios([2.0, 4.0]).sanitize(SanitizeLevel::Cheap).expand();
        assert!(c.jobs.iter().all(|j| j.sanitize == SanitizeLevel::Cheap));
    }

    #[test]
    fn zero_rate_faults_normalize_away() {
        let a = JobSpec::new(Scenario::FioRand, Mode::Hwdp, 3);
        let mut b = a;
        b.faults = Some(FaultConfig::default());
        assert_eq!(a, b, "zero-rate plan is inert, jobs are interchangeable");
        assert_eq!(a.to_json().pretty(), b.to_json().pretty(), "artifacts stay byte-identical");
        let mut c = a;
        c.faults = FaultConfig::parse("media=0.1");
        assert_ne!(a, c, "a live plan distinguishes jobs");
        assert_eq!(
            c.to_json().get("faults").and_then(Json::as_str),
            Some("media=0.1"),
            "live plans serialize in --faults syntax"
        );
    }

    #[test]
    fn grid_faults_apply_to_every_job() {
        let cfg = FaultConfig::parse("drop=0.05").expect("parses");
        let c = Grid::new("t", 1).ratios([2.0, 4.0]).faults(cfg).expand();
        assert!(c.jobs.iter().all(|j| j.effective_faults() == Some(cfg)));
    }

    #[test]
    fn smt_partner_profiles_match_spec_profiles() {
        for p in SmtPartner::ALL {
            assert_eq!(p.profile().name, p.name(), "SmtPartner order drifted from SpecProfile");
            assert_eq!(SmtPartner::parse(p.name()), Some(p));
        }
        assert!(SmtPartner::parse("fortran").is_none());
    }

    #[test]
    fn repeats_one_normalizes_away() {
        let a = JobSpec::new(Scenario::FioRand, Mode::Hwdp, 3);
        let mut b = a;
        b.repeats = 0; // zero runs is meaningless; normalizes to one
        assert_eq!(a, b, "repeats <= 1 is a plain single run");
        assert_eq!(a.to_json().pretty(), b.to_json().pretty(), "artifacts stay byte-identical");
        let mut c = a;
        c.repeats = 5;
        assert_ne!(a, c, "a real repeat count distinguishes jobs");
        assert_eq!(c.to_json().get("repeats").and_then(Json::as_f64), Some(5.0));
        assert_eq!(a.to_json().get("repeats"), None, "repeats=1 omitted from JSON");
    }

    #[test]
    fn pin_distinguishes_jobs_and_serializes_only_when_set() {
        let a = JobSpec::new(Scenario::FioRand, Mode::Hwdp, 3);
        let mut b = a;
        b.pin = Some(0);
        assert_ne!(a, b, "pinning changes placement, so it changes identity");
        assert_eq!(a.to_json().get("pin"), None, "unpinned jobs omit the field");
        assert_eq!(b.to_json().get("pin").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn grid_pin_and_repeats_apply_to_every_job() {
        let c = Grid::new("t", 1).ratios([2.0, 4.0]).pin(2).repeats(3).expand();
        assert!(c.jobs.iter().all(|j| j.pin == Some(2) && j.effective_repeats() == 3));
    }

    #[test]
    fn dataset_pages_scale_with_ratio() {
        let mut job = JobSpec::new(Scenario::FioRand, Mode::Hwdp, 0);
        job.memory_frames = 512;
        job.ratio = 4.0;
        assert_eq!(job.dataset_pages(), 2048);
    }
}
