//! Small-sample summary statistics for repeated campaign jobs.
//!
//! A job run with `repeats = K` produces K values per metric; the artifact
//! reports their mean, sample standard deviation, and a 95 % confidence
//! half-width based on Student's t distribution (small K makes the normal
//! z = 1.96 badly anticonservative — at K = 3 the t multiplier is 4.30).

/// Mean / spread summary of one metric across repeats.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Half-width of the 95 % confidence interval for the mean
    /// (`t95(n−1) · stddev / √n`; 0 for n < 2).
    pub ci95_half: f64,
}

impl Summary {
    /// The interval `[mean − ci95_half, mean + ci95_half]`.
    pub fn interval(&self) -> (f64, f64) {
        (self.mean - self.ci95_half, self.mean + self.ci95_half)
    }
}

/// Two-sided 95 % Student's t critical value for `df` degrees of freedom.
///
/// Exact table values for df ≤ 30, the asymptotic normal quantile above
/// (the df = 30 value 2.042 is within 4 % of it already).
pub fn t95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        d if d <= TABLE.len() => TABLE[d - 1],
        _ => 1.96,
    }
}

/// Summarizes a sample. Empty input yields an all-zero summary with
/// `n = 0`.
pub fn summarize(values: &[f64]) -> Summary {
    let n = values.len();
    if n == 0 {
        return Summary { n: 0, mean: 0.0, stddev: 0.0, ci95_half: 0.0 };
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return Summary { n, mean, stddev: 0.0, ci95_half: 0.0 };
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
    let stddev = var.sqrt();
    let ci95_half = t95(n - 1) * stddev / (n as f64).sqrt();
    Summary { n, mean, stddev, ci95_half }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample_has_zero_spread() {
        let s = summarize(&[5.0, 5.0, 5.0]);
        assert_eq!(s, Summary { n: 3, mean: 5.0, stddev: 0.0, ci95_half: 0.0 });
    }

    #[test]
    fn known_small_sample() {
        // Sample {1, 2, 3}: mean 2, variance 1, sd 1, CI = 4.303/√3.
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert!((s.stddev - 1.0).abs() < 1e-12);
        assert!((s.ci95_half - 4.303 / 3.0_f64.sqrt()).abs() < 1e-9);
        let (lo, hi) = s.interval();
        assert!(lo < 2.0 && hi > 2.0);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(summarize(&[]).n, 0);
        let one = summarize(&[7.5]);
        assert_eq!((one.n, one.mean, one.stddev, one.ci95_half), (1, 7.5, 0.0, 0.0));
    }

    #[test]
    fn t_table_monotone_toward_normal() {
        assert_eq!(t95(0), f64::INFINITY);
        assert!((t95(2) - 4.303).abs() < 1e-12);
        for df in 1..40 {
            assert!(t95(df + 1) <= t95(df), "t95 must decrease with df");
        }
        assert_eq!(t95(1000), 1.96);
    }

    #[test]
    fn order_invariant_mean() {
        let a = summarize(&[3.0, 1.0, 2.0]);
        let b = summarize(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }
}
