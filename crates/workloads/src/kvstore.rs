//! MiniDB — a page-granular key-value store over a memory-mapped file,
//! standing in for RocksDB (§VI's DBBench and YCSB host).
//!
//! The paper uses RocksDB purely as a realistic generator of random
//! accesses to a large mmap'd dataset (4 KiB records, dataset 2× physical
//! memory). MiniDB reproduces that access pattern with real data: each
//! record occupies one 4 KiB page whose first bytes hold a verifiable
//! header `(magic, key, version)`. Reads check the header, so any bug in
//! the demand-paging machinery (wrong LBA in a PTE, lost DMA, stale
//! eviction) surfaces as a verification failure.

use hwdp_sim::rng::Prng;

use crate::{RegionId, Step, Workload};

/// Bytes of the verifiable record header.
pub const RECORD_HEADER_LEN: usize = 24;

const MAGIC: u64 = 0x4D69_6E69_4442_2121; // "MiniDB!!"

/// Builds the on-disk header for `(key, version)`.
pub fn record_header(key: u64, version: u64) -> [u8; RECORD_HEADER_LEN] {
    let mut h = [0u8; RECORD_HEADER_LEN];
    h[0..8].copy_from_slice(&MAGIC.to_le_bytes());
    h[8..16].copy_from_slice(&key.to_le_bytes());
    h[16..24].copy_from_slice(&version.to_le_bytes());
    h
}

/// Parses and validates a record header for `key`; returns the version.
pub fn check_header(key: u64, bytes: &[u8]) -> Option<u64> {
    if bytes.len() < RECORD_HEADER_LEN {
        return None;
    }
    let magic = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
    let k = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if magic != MAGIC || k != key {
        return None;
    }
    Some(u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")))
}

/// The embedded store: key → one 4 KiB record page in a mapped region.
#[derive(Clone, Copy, Debug)]
pub struct MiniDb {
    region: RegionId,
    /// Records currently present (keys `0..records`).
    records: u64,
    /// Maximum records the file can hold.
    capacity: u64,
}

impl MiniDb {
    /// Opens a store with `records` pre-loaded records in a region sized
    /// for `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `records > capacity` or the store is empty.
    pub fn new(region: RegionId, records: u64, capacity: u64) -> Self {
        assert!(records > 0, "empty store");
        assert!(records <= capacity, "records exceed capacity");
        MiniDb { region, records, capacity }
    }

    /// Current record count.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The read step for `key` (fetches the verifiable header).
    pub fn get(&self, key: u64) -> Step {
        debug_assert!(key < self.records);
        Step::Read {
            region: self.region,
            offset: key * 4096,
            len: RECORD_HEADER_LEN as u32,
        }
    }

    /// The write step updating `key` to `version`.
    pub fn put(&self, key: u64, version: u64) -> Step {
        debug_assert!(key < self.records);
        Step::Write {
            region: self.region,
            offset: key * 4096,
            data: record_header(key, version).to_vec(),
        }
    }

    /// Appends a new record, returning its key and the write step.
    /// Returns `None` when the file is full.
    pub fn insert(&mut self) -> Option<(u64, Step)> {
        if self.records >= self.capacity {
            return None;
        }
        let key = self.records;
        self.records += 1;
        Some((key, Step::Write {
            region: self.region,
            offset: key * 4096,
            data: record_header(key, 0).to_vec(),
        }))
    }

    /// Verifies bytes returned by a [`MiniDb::get`] on `key`.
    pub fn verify(&self, key: u64, bytes: &[u8]) -> bool {
        check_header(key, bytes).is_some()
    }
}

/// DBBench `readrandom`: uniformly random gets (§VI-C "general key-value
/// store performance").
#[derive(Debug)]
pub struct DbBenchReadRandom {
    db: MiniDb,
    rng: Prng,
    ops_target: u64,
    ops_done: u64,
    verify_failures: u64,
    /// Per-op application work (key lookup, memtable/index probing).
    per_op_instructions: u64,
    pending_key: Option<u64>,
    state: State,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Compute,
    Read,
}

impl DbBenchReadRandom {
    /// Creates a `readrandom` job of `ops_target` gets.
    pub fn new(db: MiniDb, ops_target: u64, rng: Prng) -> Self {
        DbBenchReadRandom {
            db,
            rng,
            ops_target,
            ops_done: 0,
            verify_failures: 0,
            per_op_instructions: 5_000,
            pending_key: None,
            state: State::Compute,
        }
    }
}

impl Workload for DbBenchReadRandom {
    fn next(&mut self, last_read: Option<&[u8]>) -> Step {
        // Verify the completed read, if any.
        if let (Some(key), Some(bytes)) = (self.pending_key.take(), last_read) {
            if !self.db.verify(key, bytes) {
                self.verify_failures += 1;
            }
            self.ops_done += 1;
        }
        if self.ops_done >= self.ops_target {
            return Step::Finish;
        }
        match self.state {
            State::Compute => {
                self.state = State::Read;
                Step::Compute { instructions: self.per_op_instructions }
            }
            State::Read => {
                self.state = State::Compute;
                let key = self.rng.below(self.db.records());
                self.pending_key = Some(key);
                self.db.get(key)
            }
        }
    }

    fn ops_done(&self) -> u64 {
        self.ops_done
    }

    fn verify_failures(&self) -> u64 {
        self.verify_failures
    }

    fn name(&self) -> String {
        format!("dbbench-readrandom({} records)", self.db.records())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = record_header(42, 7);
        assert_eq!(check_header(42, &h), Some(7));
        assert_eq!(check_header(43, &h), None, "wrong key rejected");
        let mut corrupt = h;
        corrupt[0] ^= 0xFF;
        assert_eq!(check_header(42, &corrupt), None, "bad magic rejected");
        assert_eq!(check_header(42, &h[..10]), None, "short read rejected");
    }

    #[test]
    fn get_put_target_record_pages() {
        let db = MiniDb::new(RegionId(1), 100, 128);
        let Step::Read { region, offset, len } = db.get(31) else { panic!("get is a read") };
        assert_eq!(region, RegionId(1));
        assert_eq!(offset, 31 * 4096);
        assert_eq!(len as usize, RECORD_HEADER_LEN);
        let Step::Write { offset, data, .. } = db.put(31, 9) else { panic!("put is a write") };
        assert_eq!(offset, 31 * 4096);
        assert_eq!(check_header(31, &data), Some(9));
    }

    #[test]
    fn insert_appends_until_capacity() {
        let mut db = MiniDb::new(RegionId(0), 2, 3);
        let (key, step) = db.insert().expect("room for one more");
        assert_eq!(key, 2);
        step.validate();
        assert_eq!(db.records(), 3);
        assert!(db.insert().is_none(), "full");
    }

    #[test]
    fn dbbench_counts_and_verifies() {
        let db = MiniDb::new(RegionId(0), 50, 64);
        let mut w = DbBenchReadRandom::new(db, 5, Prng::seed_from(1));
        let mut last: Option<Vec<u8>> = None;
        let mut reads = 0;
        loop {
            let step = w.next(last.as_deref());
            last = None;
            match step {
                Step::Read { offset, .. } => {
                    reads += 1;
                    // Simulate the system returning correct data.
                    let key = offset / 4096;
                    last = Some(record_header(key, 0).to_vec());
                }
                Step::Finish => break,
                _ => {}
            }
        }
        assert_eq!(reads, 5);
        assert_eq!(w.ops_done(), 5);
        assert_eq!(w.verify_failures(), 0);
    }

    #[test]
    fn dbbench_detects_corruption() {
        let db = MiniDb::new(RegionId(0), 50, 64);
        let mut w = DbBenchReadRandom::new(db, 2, Prng::seed_from(1));
        let mut last: Option<Vec<u8>> = None;
        loop {
            let step = w.next(last.as_deref());
            last = None;
            match step {
                Step::Read { .. } => {
                    last = Some(vec![0u8; RECORD_HEADER_LEN]); // garbage
                }
                Step::Finish => break,
                _ => {}
            }
        }
        assert_eq!(w.verify_failures(), 2, "all corrupted reads flagged");
    }
}
