//! SPEC-CPU-2017-like compute kernels for the SMT co-location experiment
//! (Fig. 16): pure CPU-bound threads with per-benchmark base IPC.
//!
//! The experiment pins one FIO thread and one SPEC thread on the two
//! hardware threads of a physical core and measures how much the SPEC
//! thread suffers from the FIO thread's fault handling. Only the SPEC
//! workloads' *IPC personalities* matter for that, so each kernel is an
//! endless stream of compute chunks at its benchmark's characteristic IPC.

use crate::{Step, Workload};

/// IPC personality of one SPEC CPU 2017 benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpecProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Solo (un-colocated, unpolluted) IPC on the modeled core.
    pub base_ipc: f64,
}

impl SpecProfile {
    /// The six benchmarks used for Fig. 16 in this reproduction, spanning
    /// low-IPC memory-bound (mcf, lbm) to high-IPC compute-bound
    /// (perlbench, deepsjeng).
    pub const ALL: [SpecProfile; 6] = [
        SpecProfile { name: "perlbench", base_ipc: 2.0 },
        SpecProfile { name: "gcc", base_ipc: 1.7 },
        SpecProfile { name: "mcf", base_ipc: 0.9 },
        SpecProfile { name: "lbm", base_ipc: 1.1 },
        SpecProfile { name: "deepsjeng", base_ipc: 1.6 },
        SpecProfile { name: "xz", base_ipc: 1.3 },
    ];

    /// Finds a profile by name.
    pub fn by_name(name: &str) -> Option<SpecProfile> {
        SpecProfile::ALL.iter().copied().find(|p| p.name == name)
    }
}

/// An endless CPU-bound kernel emitting fixed-size compute chunks.
#[derive(Clone, Copy, Debug)]
pub struct SpecKernel {
    profile: SpecProfile,
    chunk: u64,
    chunks_done: u64,
}

impl SpecKernel {
    /// Creates the kernel with ~1 µs-scale chunks (2 800 instructions at
    /// IPC 1 on a 2.8 GHz clock) so SMT interaction is sampled finely.
    pub fn new(profile: SpecProfile) -> Self {
        SpecKernel { profile, chunk: 2_800, chunks_done: 0 }
    }

    /// The benchmark's IPC personality.
    pub fn profile(&self) -> SpecProfile {
        self.profile
    }

    /// Overrides the chunk size.
    pub fn with_chunk(mut self, instructions: u64) -> Self {
        assert!(instructions > 0, "chunk must be nonzero");
        self.chunk = instructions;
        self
    }
}

impl Workload for SpecKernel {
    fn next(&mut self, _last_read: Option<&[u8]>) -> Step {
        self.chunks_done += 1;
        Step::Compute { instructions: self.chunk }
    }

    fn ops_done(&self) -> u64 {
        self.chunks_done
    }

    fn name(&self) -> String {
        format!("spec-{}", self.profile.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_ipc_range() {
        let ipcs: Vec<f64> = SpecProfile::ALL.iter().map(|p| p.base_ipc).collect();
        assert!(ipcs.iter().cloned().fold(f64::INFINITY, f64::min) < 1.0, "memory-bound present");
        assert!(ipcs.iter().cloned().fold(0.0, f64::max) >= 1.8, "compute-bound present");
    }

    #[test]
    fn by_name_lookup() {
        assert_eq!(SpecProfile::by_name("mcf").unwrap().base_ipc, 0.9);
        assert!(SpecProfile::by_name("nonexistent").is_none());
    }

    #[test]
    fn kernel_runs_forever() {
        let mut k = SpecKernel::new(SpecProfile::by_name("xz").unwrap());
        for _ in 0..1000 {
            assert!(matches!(k.next(None), Step::Compute { .. }));
        }
        assert_eq!(k.ops_done(), 1000);
        assert_eq!(k.name(), "spec-xz");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_chunk_rejected() {
        let _ = SpecKernel::new(SpecProfile::ALL[0]).with_chunk(0);
    }
}
