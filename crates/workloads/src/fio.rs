//! FIO with the `mmap` engine: random 4 KiB reads over a memory-mapped
//! file (the paper's demand-paging microbenchmark, Figs. 12/13/16).
//!
//! Each operation is a tiny amount of user work (loop bookkeeping) plus a
//! 4 KiB load from a uniformly random page. With the file far larger than
//! memory (or cold), nearly every read is a page miss — exactly the
//! behavior the paper uses to expose raw demand-paging latency.

use hwdp_sim::rng::Prng;

use crate::{RegionId, Step, Workload};

/// FIO `--rw=randread --bs=4k` over an mmap'd file.
#[derive(Debug)]
pub struct FioRandRead {
    region: RegionId,
    pages: u64,
    rng: Prng,
    ops_target: u64,
    ops_done: u64,
    /// Per-op user instructions (buffer touch + loop overhead).
    think_instructions: u64,
    state: State,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Compute,
    Read,
}

impl FioRandRead {
    /// Creates a FIO job issuing `ops_target` random 4 KiB reads over a
    /// `pages`-page region.
    ///
    /// # Panics
    ///
    /// Panics if `pages` or `ops_target` is zero.
    pub fn new(region: RegionId, pages: u64, ops_target: u64, rng: Prng) -> Self {
        assert!(pages > 0 && ops_target > 0, "empty FIO job");
        FioRandRead {
            region,
            pages,
            rng,
            ops_target,
            ops_done: 0,
            think_instructions: 6_000,
            state: State::Compute,
        }
    }

    /// Overrides the per-op compute (default 6 000 instructions: the mmap
    /// engine's 4 KiB buffer handling, verification and loop bookkeeping —
    /// calibrated so FIO's user/kernel instruction split matches Fig. 16's
    /// totals).
    pub fn with_think_instructions(mut self, n: u64) -> Self {
        self.think_instructions = n;
        self
    }
}

impl Workload for FioRandRead {
    fn next(&mut self, _last_read: Option<&[u8]>) -> Step {
        if self.ops_done >= self.ops_target {
            return Step::Finish;
        }
        match self.state {
            State::Compute => {
                self.state = State::Read;
                Step::Compute { instructions: self.think_instructions }
            }
            State::Read => {
                self.state = State::Compute;
                self.ops_done += 1;
                let page = self.rng.below(self.pages);
                Step::Read { region: self.region, offset: page * 4096, len: 4096 }
            }
        }
    }

    fn ops_done(&self) -> u64 {
        self.ops_done
    }

    fn name(&self) -> String {
        format!("fio-randread({} pages)", self.pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut dyn Workload) -> Vec<Step> {
        let mut steps = Vec::new();
        loop {
            let s = w.next(None);
            let done = s == Step::Finish;
            steps.push(s);
            if done {
                break;
            }
        }
        steps
    }

    #[test]
    fn alternates_compute_and_read_until_target() {
        let mut f = FioRandRead::new(RegionId(0), 100, 3, Prng::seed_from(1));
        let steps = drain(&mut f);
        // 3 × (Compute, Read) + Finish.
        assert_eq!(steps.len(), 7);
        assert!(matches!(steps[0], Step::Compute { .. }));
        assert!(matches!(steps[1], Step::Read { .. }));
        assert!(matches!(steps[6], Step::Finish));
        assert_eq!(f.ops_done(), 3);
    }

    #[test]
    fn reads_are_page_aligned_4k() {
        let mut f = FioRandRead::new(RegionId(0), 1000, 50, Prng::seed_from(2));
        loop {
            let s = f.next(None);
            if s == Step::Finish {
                break;
            }
            s.validate();
            if let Step::Read { offset, len, .. } = s {
                assert_eq!(offset % 4096, 0);
                assert_eq!(len, 4096);
                assert!(offset / 4096 < 1000);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = FioRandRead::new(RegionId(0), 64, 10, Prng::seed_from(7));
        let mut b = FioRandRead::new(RegionId(0), 64, 10, Prng::seed_from(7));
        for _ in 0..21 {
            assert_eq!(a.next(None), b.next(None));
        }
    }

    #[test]
    fn covers_many_distinct_pages() {
        let mut f = FioRandRead::new(RegionId(0), 512, 300, Prng::seed_from(3));
        let mut pages = std::collections::HashSet::new();
        loop {
            match f.next(None) {
                Step::Finish => break,
                Step::Read { offset, .. } => {
                    pages.insert(offset / 4096);
                }
                _ => {}
            }
        }
        assert!(pages.len() > 150, "uniform reads touch many pages: {}", pages.len());
    }
}

/// FIO `--rw=read --bs=4k`: sequential 4 KiB reads over the mapped file
/// (wrapping at the end). The spatial locality makes it the natural
/// beneficiary of readahead/prefetching (paper §V "Prefetching Support").
#[derive(Debug)]
pub struct FioSeqRead {
    region: RegionId,
    pages: u64,
    next_page: u64,
    ops_target: u64,
    ops_done: u64,
    think_instructions: u64,
    state: State,
}

impl FioSeqRead {
    /// Creates a sequential-read job of `ops_target` reads over a
    /// `pages`-page region.
    ///
    /// # Panics
    ///
    /// Panics if `pages` or `ops_target` is zero.
    pub fn new(region: RegionId, pages: u64, ops_target: u64) -> Self {
        assert!(pages > 0 && ops_target > 0, "empty FIO job");
        FioSeqRead {
            region,
            pages,
            next_page: 0,
            ops_target,
            ops_done: 0,
            think_instructions: 6_000,
            state: State::Compute,
        }
    }
}

impl Workload for FioSeqRead {
    fn next(&mut self, _last_read: Option<&[u8]>) -> Step {
        if self.ops_done >= self.ops_target {
            return Step::Finish;
        }
        match self.state {
            State::Compute => {
                self.state = State::Read;
                Step::Compute { instructions: self.think_instructions }
            }
            State::Read => {
                self.state = State::Compute;
                self.ops_done += 1;
                let page = self.next_page;
                self.next_page = (self.next_page + 1) % self.pages;
                Step::Read { region: self.region, offset: page * 4096, len: 4096 }
            }
        }
    }

    fn ops_done(&self) -> u64 {
        self.ops_done
    }

    fn name(&self) -> String {
        format!("fio-seqread({} pages)", self.pages)
    }
}

#[cfg(test)]
mod seq_tests {
    use super::*;

    #[test]
    fn reads_are_sequential_and_wrap() {
        let mut f = FioSeqRead::new(RegionId(0), 4, 10);
        let mut pages = Vec::new();
        loop {
            match f.next(None) {
                Step::Read { offset, .. } => pages.push(offset / 4096),
                Step::Finish => break,
                _ => {}
            }
        }
        assert_eq!(pages, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
        assert_eq!(f.ops_done(), 10);
    }
}
