//! An anonymous-memory churn workload (paper §V: demand paging for
//! anonymous pages).
//!
//! The workload treats a mapped region as scratch memory: each operation
//! picks a random page, *reads* an 8-byte counter from it (verifying the
//! value — a never-touched page must read zero, an updated page must read
//! exactly the last value written, even across swap-out/swap-in), then
//! *writes* an incremented counter back. With the region larger than
//! memory, this continuously exercises zero-fill first touches, swap-out
//! of dirty pages, and swap-in — the complete §V anonymous-paging
//! lifecycle.

use hwdp_sim::rng::Prng;

use crate::{RegionId, Step, Workload};

/// Anonymous scratch-memory churn with full value verification.
#[derive(Debug)]
pub struct ScratchChurn {
    region: RegionId,
    pages: u64,
    rng: Prng,
    ops_target: u64,
    ops_done: u64,
    verify_failures: u64,
    expected: Vec<u64>,
    state: State,
    current_page: u64,
    counter: u64,
    think_instructions: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Compute,
    Read,
    Write,
}

impl ScratchChurn {
    /// Creates a churn job of `ops_target` read-verify-write operations
    /// over `pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages` or `ops_target` is zero.
    pub fn new(region: RegionId, pages: u64, ops_target: u64, rng: Prng) -> Self {
        assert!(pages > 0 && ops_target > 0, "empty churn job");
        ScratchChurn {
            region,
            pages,
            rng,
            ops_target,
            ops_done: 0,
            verify_failures: 0,
            expected: vec![0; pages as usize],
            state: State::Compute,
            current_page: 0,
            counter: 0,
            think_instructions: 2_000,
        }
    }
}

impl Workload for ScratchChurn {
    fn next(&mut self, last_read: Option<&[u8]>) -> Step {
        if self.state == State::Write {
            // Verify the read that just completed.
            let got = last_read
                .and_then(|b| b.get(..8))
                .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")));
            if got != Some(self.expected[self.current_page as usize]) {
                self.verify_failures += 1;
            }
            // Write the next counter value.
            self.counter += 1;
            self.expected[self.current_page as usize] = self.counter;
            self.state = State::Compute;
            self.ops_done += 1;
            return Step::Write {
                region: self.region,
                offset: self.current_page * 4096,
                data: self.counter.to_le_bytes().to_vec(),
            };
        }
        if self.ops_done >= self.ops_target {
            return Step::Finish;
        }
        match self.state {
            State::Compute => {
                self.state = State::Read;
                Step::Compute { instructions: self.think_instructions }
            }
            State::Read => {
                self.state = State::Write;
                self.current_page = self.rng.below(self.pages);
                Step::Read { region: self.region, offset: self.current_page * 4096, len: 8 }
            }
            State::Write => unreachable!("handled above"),
        }
    }

    fn ops_done(&self) -> u64 {
        self.ops_done
    }

    fn verify_failures(&self) -> u64 {
        self.verify_failures
    }

    fn name(&self) -> String {
        format!("scratch-churn({} pages)", self.pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Drives the workload against a perfect in-memory page store.
    fn run_perfect(pages: u64, ops: u64) -> ScratchChurn {
        let mut w = ScratchChurn::new(RegionId(0), pages, ops, Prng::seed_from(1));
        let mut mem: HashMap<u64, u64> = HashMap::new();
        let mut last: Option<Vec<u8>> = None;
        let mut pending_page = None;
        loop {
            let step = w.next(last.as_deref());
            last = None;
            match step {
                Step::Read { offset, .. } => {
                    let page = offset / 4096;
                    pending_page = Some(page);
                    let v = mem.get(&page).copied().unwrap_or(0);
                    last = Some(v.to_le_bytes().to_vec());
                }
                Step::Write { offset, data, .. } => {
                    let page = offset / 4096;
                    assert_eq!(Some(page), pending_page, "write follows its read");
                    mem.insert(page, u64::from_le_bytes(data[..8].try_into().unwrap()));
                }
                Step::Compute { .. } => {}
                Step::Finish => break,
            }
        }
        w
    }

    #[test]
    fn perfect_memory_verifies_clean() {
        let w = run_perfect(64, 500);
        assert_eq!(w.ops_done(), 500);
        assert_eq!(w.verify_failures(), 0);
    }

    #[test]
    fn first_touch_expects_zero() {
        let mut w = ScratchChurn::new(RegionId(0), 4, 1, Prng::seed_from(2));
        assert!(matches!(w.next(None), Step::Compute { .. }));
        assert!(matches!(w.next(None), Step::Read { .. }));
        // Return nonzero for a never-written page: must be flagged.
        let bad = 7u64.to_le_bytes().to_vec();
        let step = w.next(Some(&bad));
        assert!(matches!(step, Step::Write { .. }));
        assert_eq!(w.verify_failures(), 1);
    }

    #[test]
    fn stale_value_detected() {
        let mut w = ScratchChurn::new(RegionId(0), 1, 2, Prng::seed_from(3));
        // Op 1: read 0 (ok), write 1.
        w.next(None); // compute
        w.next(None); // read
        let step = w.next(Some(&0u64.to_le_bytes().to_vec()));
        let Step::Write { data, .. } = step else { panic!("write") };
        assert_eq!(u64::from_le_bytes(data[..8].try_into().unwrap()), 1);
        // Op 2: same page; returning stale 0 must be flagged.
        w.next(None); // compute
        w.next(None); // read
        w.next(Some(&0u64.to_le_bytes().to_vec()));
        assert_eq!(w.verify_failures(), 1, "stale read caught");
    }
}
