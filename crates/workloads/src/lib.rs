//! Workload generators for the evaluation (§VI): FIO's mmap engine, a
//! RocksDB-stand-in key-value store ("MiniDB") driven by DBBench
//! `readrandom` and the YCSB A–F mixes, and SPEC-CPU-2017-like compute
//! kernels for the SMT co-location experiment.
//!
//! A workload is a deterministic state machine producing [`Step`]s; the
//! system simulator executes each step in virtual time (compute advances
//! the thread's clock at its effective IPC; reads/writes walk the full
//! demand-paging machinery) and feeds read data back into
//! [`Workload::next`], so data-dependent behavior (and end-to-end data
//! *verification*) is possible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fio;
pub mod kvstore;
pub mod scratch;
pub mod spec;
pub mod ycsb;

pub use fio::{FioRandRead, FioSeqRead};
pub use kvstore::{DbBenchReadRandom, MiniDb, RECORD_HEADER_LEN};
pub use scratch::ScratchChurn;
pub use spec::{SpecKernel, SpecProfile};
pub use ycsb::{Ycsb, YcsbKind};

/// A memory-mapped region handle. The simulator assigns these when a
/// workload's dataset is mapped and translates `(region, offset)` to
/// virtual addresses.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegionId(pub u32);

/// One step of a workload thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Execute `instructions` of user-mode compute.
    Compute {
        /// Instructions to retire.
        instructions: u64,
    },
    /// Read `len` bytes at `offset` within `region` (a load through the
    /// mapped file — may fault). The bytes come back via
    /// [`Workload::next`].
    Read {
        /// Target region.
        region: RegionId,
        /// Byte offset within the region.
        offset: u64,
        /// Bytes to read (≤ 4096; reads never cross a page boundary).
        len: u32,
    },
    /// Write `data` at `offset` within `region` (a store through the
    /// mapped file — may fault, dirties the page).
    Write {
        /// Target region.
        region: RegionId,
        /// Byte offset within the region.
        offset: u64,
        /// Bytes to store.
        data: Vec<u8>,
    },
    /// The workload is finished; the thread exits.
    Finish,
}

impl Step {
    /// Validates the step's invariants (reads/writes stay within one page).
    pub fn validate(&self) {
        match self {
            Step::Read { offset, len, .. } => {
                assert!(*len as usize <= 4096, "read longer than a page");
                assert!(
                    (offset % 4096) + *len as u64 <= 4096,
                    "read crosses a page boundary"
                );
            }
            Step::Write { offset, data, .. } => {
                assert!(data.len() <= 4096, "write longer than a page");
                assert!(
                    (offset % 4096) as usize + data.len() <= 4096,
                    "write crosses a page boundary"
                );
            }
            _ => {}
        }
    }
}

/// A deterministic workload state machine.
pub trait Workload {
    /// Produces the next step. `last_read` carries the data returned by the
    /// immediately preceding [`Step::Read`], if any.
    fn next(&mut self, last_read: Option<&[u8]>) -> Step;

    /// Completed application-level operations (for throughput metrics).
    fn ops_done(&self) -> u64;

    /// Data-integrity violations detected (reads returning wrong bytes).
    fn verify_failures(&self) -> u64 {
        0
    }

    /// Short human-readable name.
    fn name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_validation_accepts_page_aligned() {
        Step::Read { region: RegionId(0), offset: 4096, len: 4096 }.validate();
        Step::Write { region: RegionId(0), offset: 8192 + 100, data: vec![0; 100] }.validate();
        Step::Compute { instructions: 5 }.validate();
        Step::Finish.validate();
    }

    #[test]
    #[should_panic(expected = "crosses a page boundary")]
    fn step_validation_rejects_straddling_read() {
        Step::Read { region: RegionId(0), offset: 4000, len: 200 }.validate();
    }

    #[test]
    #[should_panic(expected = "crosses a page boundary")]
    fn step_validation_rejects_straddling_write() {
        Step::Write { region: RegionId(0), offset: 4090, data: vec![0; 10] }.validate();
    }
}
