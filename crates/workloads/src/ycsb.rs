//! The YCSB core workloads A–F over MiniDB (§VI-C "performance of
//! key-value stores in the cloud").
//!
//! | kind | mix                              | request distribution |
//! |------|----------------------------------|----------------------|
//! | A    | 50 % read / 50 % update          | scrambled Zipfian    |
//! | B    | 95 % read / 5 % update           | scrambled Zipfian    |
//! | C    | 100 % read                       | scrambled Zipfian    |
//! | D    | 95 % read / 5 % insert           | latest               |
//! | E    | 95 % scan / 5 % insert           | scrambled Zipfian    |
//! | F    | 50 % read / 50 % read-modify-write | scrambled Zipfian  |
//!
//! Every read is verified against the MiniDB record header, so the whole
//! demand-paging machinery is integrity-checked while benchmarking.

use std::collections::VecDeque;

use hwdp_sim::dist::{Latest, ScrambledZipfian};
use hwdp_sim::rng::Prng;

use crate::kvstore::MiniDb;
use crate::{Step, Workload};

/// The six YCSB core workloads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum YcsbKind {
    /// 50/50 read/update, Zipfian.
    A,
    /// 95/5 read/update, Zipfian.
    B,
    /// Read-only, Zipfian.
    C,
    /// 95/5 read/insert, latest-skewed.
    D,
    /// 95/5 scan/insert, Zipfian.
    E,
    /// 50/50 read/read-modify-write, Zipfian.
    F,
}

impl YcsbKind {
    /// All six, in order.
    pub const ALL: [YcsbKind; 6] =
        [YcsbKind::A, YcsbKind::B, YcsbKind::C, YcsbKind::D, YcsbKind::E, YcsbKind::F];

    /// Canonical name ("ycsb-a" ...).
    pub fn name(self) -> &'static str {
        match self {
            YcsbKind::A => "ycsb-a",
            YcsbKind::B => "ycsb-b",
            YcsbKind::C => "ycsb-c",
            YcsbKind::D => "ycsb-d",
            YcsbKind::E => "ycsb-e",
            YcsbKind::F => "ycsb-f",
        }
    }

    /// Fraction of operations that write (update/insert/RMW-write).
    pub fn write_fraction(self) -> f64 {
        match self {
            YcsbKind::A | YcsbKind::F => 0.5,
            YcsbKind::B | YcsbKind::D | YcsbKind::E => 0.05,
            YcsbKind::C => 0.0,
        }
    }
}

/// Maximum pages touched by one YCSB-E scan (YCSB defaults to up to 100
/// records; scaled down to keep simulated scans proportionate to the
/// scaled dataset).
const MAX_SCAN_LEN: u64 = 16;

/// A YCSB client thread.
#[derive(Debug)]
pub struct Ycsb {
    kind: YcsbKind,
    db: MiniDb,
    zipf: ScrambledZipfian,
    latest: Latest,
    rng: Prng,
    ops_target: u64,
    ops_done: u64,
    verify_failures: u64,
    /// Steps remaining in the current operation, each with the key a read
    /// expects (for verification).
    queue: VecDeque<(Step, Option<u64>)>,
    /// Key awaiting verification from the last issued read.
    awaiting: Option<u64>,
    in_op: bool,
    version_counter: u64,
    per_op_instructions: u64,
}

impl Ycsb {
    /// Creates a YCSB client running `ops_target` operations.
    pub fn new(kind: YcsbKind, db: MiniDb, ops_target: u64, rng: Prng) -> Self {
        let records = db.records();
        Ycsb {
            kind,
            db,
            zipf: ScrambledZipfian::new(records),
            latest: Latest::new(records),
            rng,
            ops_target,
            ops_done: 0,
            verify_failures: 0,
            queue: VecDeque::new(),
            awaiting: None,
            in_op: false,
            version_counter: 1,
            per_op_instructions: 30_000,
        }
    }

    /// Overrides per-operation application compute (default 30 000
    /// instructions: request parsing, RocksDB-style block decode and index
    /// probing, response marshalling — calibrated so YCSB's compute/paging
    /// split yields the paper's 5–27 % gains rather than FIO's 29–57 %).
    pub fn with_per_op_instructions(mut self, n: u64) -> Self {
        self.per_op_instructions = n;
        self
    }

    fn pick_key(&mut self) -> u64 {
        match self.kind {
            YcsbKind::D => self.latest.sample(&mut self.rng),
            _ => self.zipf.sample(&mut self.rng),
        }
    }

    fn build_op(&mut self) {
        debug_assert!(self.queue.is_empty());
        self.in_op = true;
        self.queue
            .push_back((Step::Compute { instructions: self.per_op_instructions }, None));
        let r = self.rng.f64();
        match self.kind {
            YcsbKind::C => {
                let key = self.pick_key();
                self.queue.push_back((self.db.get(key), Some(key)));
            }
            YcsbKind::A | YcsbKind::B => {
                let read_frac = if self.kind == YcsbKind::A { 0.5 } else { 0.95 };
                let key = self.pick_key();
                if r < read_frac {
                    self.queue.push_back((self.db.get(key), Some(key)));
                } else {
                    self.version_counter += 1;
                    self.queue.push_back((self.db.put(key, self.version_counter), None));
                }
            }
            YcsbKind::D => {
                if r < 0.95 {
                    let key = self.pick_key();
                    self.queue.push_back((self.db.get(key), Some(key)));
                } else if let Some((_, step)) = self.db.insert() {
                    self.latest.grow_to(self.db.records());
                    self.queue.push_back((step, None));
                } else {
                    // File full: degrade to a read (keeps the run going).
                    let key = self.pick_key();
                    self.queue.push_back((self.db.get(key), Some(key)));
                }
            }
            YcsbKind::E => {
                if r < 0.95 {
                    let start = self.pick_key();
                    let len = 1 + self.rng.below(MAX_SCAN_LEN);
                    let end = (start + len).min(self.db.records());
                    for key in start..end {
                        // Each scanned record is decoded/processed, so scans
                        // carry per-record compute on top of the per-op cost.
                        self.queue.push_back((
                            Step::Compute { instructions: self.per_op_instructions / 4 },
                            None,
                        ));
                        self.queue.push_back((self.db.get(key), Some(key)));
                    }
                } else if let Some((_, step)) = self.db.insert() {
                    self.queue.push_back((step, None));
                } else {
                    let key = self.pick_key();
                    self.queue.push_back((self.db.get(key), Some(key)));
                }
            }
            YcsbKind::F => {
                let key = self.pick_key();
                if r < 0.5 {
                    self.queue.push_back((self.db.get(key), Some(key)));
                } else {
                    // Read-modify-write: read, then write the same record.
                    self.version_counter += 1;
                    self.queue.push_back((self.db.get(key), Some(key)));
                    self.queue.push_back((self.db.put(key, self.version_counter), None));
                }
            }
        }
    }
}

impl Workload for Ycsb {
    fn next(&mut self, last_read: Option<&[u8]>) -> Step {
        if let Some(key) = self.awaiting.take() {
            match last_read {
                Some(bytes) if self.db.verify(key, bytes) => {}
                _ => self.verify_failures += 1,
            }
        }
        if self.queue.is_empty() {
            if self.in_op {
                self.ops_done += 1;
                self.in_op = false;
            }
            if self.ops_done >= self.ops_target {
                return Step::Finish;
            }
            self.build_op();
        }
        let (step, expect) = self.queue.pop_front().expect("op was just built");
        self.awaiting = expect;
        step
    }

    fn ops_done(&self) -> u64 {
        self.ops_done
    }

    fn verify_failures(&self) -> u64 {
        self.verify_failures
    }

    fn name(&self) -> String {
        format!("{}({} records)", self.kind.name(), self.db.records())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kvstore::record_header;
    use crate::RegionId;

    /// Runs a YCSB client against a perfect in-memory "system" that always
    /// returns correct record headers; returns (reads, writes).
    fn run(kind: YcsbKind, ops: u64, seed: u64) -> (u64, u64, Ycsb) {
        let db = MiniDb::new(RegionId(0), 1000, 2000);
        let mut w = Ycsb::new(kind, db, ops, Prng::seed_from(seed));
        let (mut reads, mut writes) = (0u64, 0u64);
        let mut last: Option<Vec<u8>> = None;
        loop {
            let step = w.next(last.as_deref());
            last = None;
            match step {
                Step::Read { offset, .. } => {
                    reads += 1;
                    last = Some(record_header(offset / 4096, 0).to_vec());
                }
                Step::Write { .. } => writes += 1,
                Step::Finish => break,
                Step::Compute { .. } => {}
            }
        }
        (reads, writes, w)
    }

    #[test]
    fn ycsb_c_is_read_only() {
        let (reads, writes, w) = run(YcsbKind::C, 200, 1);
        assert_eq!(writes, 0);
        assert_eq!(reads, 200);
        assert_eq!(w.ops_done(), 200);
        assert_eq!(w.verify_failures(), 0);
    }

    #[test]
    fn ycsb_a_is_half_writes() {
        let (reads, writes, _) = run(YcsbKind::A, 2000, 2);
        let frac = writes as f64 / (reads + writes) as f64;
        assert!((0.45..0.55).contains(&frac), "write fraction {frac}");
    }

    #[test]
    fn ycsb_b_is_mostly_reads() {
        let (reads, writes, _) = run(YcsbKind::B, 2000, 3);
        let frac = writes as f64 / (reads + writes) as f64;
        assert!((0.02..0.09).contains(&frac), "write fraction {frac}");
    }

    #[test]
    fn ycsb_d_inserts_grow_store() {
        let (_, writes, w) = run(YcsbKind::D, 2000, 4);
        assert!(writes > 50, "about 5% inserts: {writes}");
        assert!(w.db.records() > 1000, "store grew: {}", w.db.records());
    }

    #[test]
    fn ycsb_e_scans_issue_many_reads() {
        let (reads, _, w) = run(YcsbKind::E, 500, 5);
        assert!(reads as f64 / w.ops_done() as f64 > 3.0, "scans read multiple records");
    }

    #[test]
    fn ycsb_f_rmw_pairs_reads_and_writes() {
        let (reads, writes, _) = run(YcsbKind::F, 2000, 6);
        // Half the ops are RMW (1 read + 1 write), half plain reads.
        let frac = writes as f64 / 2000.0;
        assert!((0.45..0.55).contains(&frac), "RMW fraction {frac}");
        assert!(reads as f64 / 2000.0 > 0.95, "every op reads");
    }

    #[test]
    fn verification_catches_bad_data() {
        let db = MiniDb::new(RegionId(0), 100, 100);
        let mut w = Ycsb::new(YcsbKind::C, db, 10, Prng::seed_from(7));
        let mut last: Option<Vec<u8>> = None;
        loop {
            let step = w.next(last.as_deref());
            last = None;
            match step {
                Step::Read { .. } => last = Some(vec![0u8; 24]),
                Step::Finish => break,
                _ => {}
            }
        }
        assert_eq!(w.verify_failures(), 10);
    }

    #[test]
    fn write_fractions_documented() {
        assert_eq!(YcsbKind::C.write_fraction(), 0.0);
        assert_eq!(YcsbKind::A.write_fraction(), 0.5);
        assert_eq!(YcsbKind::ALL.len(), 6);
    }

    #[test]
    fn hot_keys_repeat_under_zipfian() {
        let db = MiniDb::new(RegionId(0), 1000, 1000);
        let mut w = Ycsb::new(YcsbKind::C, db, 500, Prng::seed_from(8));
        let mut counts = std::collections::HashMap::new();
        let mut last: Option<Vec<u8>> = None;
        loop {
            let step = w.next(last.as_deref());
            last = None;
            match step {
                Step::Read { offset, .. } => {
                    *counts.entry(offset / 4096).or_insert(0u64) += 1;
                    last = Some(record_header(offset / 4096, 0).to_vec());
                }
                Step::Finish => break,
                _ => {}
            }
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 10, "hottest key hit {max} times (zipfian skew)");
    }
}
