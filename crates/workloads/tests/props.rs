//! Property-based tests of the workload generators: every step produced by
//! every workload is well-formed, in range, and deterministic per seed.

use hwdp_sim::rng::Prng;
use hwdp_workloads::kvstore::record_header;
use hwdp_workloads::{
    DbBenchReadRandom, FioRandRead, MiniDb, RegionId, ScratchChurn, Step, Workload, Ycsb,
    YcsbKind,
};
use proptest::prelude::*;

/// Drains a workload, answering every read with a correct record header,
/// and validates each step.
fn drive(w: &mut dyn Workload, region_pages: u64, max_steps: usize) -> (u64, u64) {
    let mut last: Option<Vec<u8>> = None;
    let mut reads = 0;
    let mut writes = 0;
    for _ in 0..max_steps {
        let step = w.next(last.as_deref());
        last = None;
        step.validate();
        match step {
            Step::Read { offset, len, .. } => {
                assert!(offset / 4096 < region_pages, "read beyond region");
                reads += 1;
                let key = offset / 4096;
                let mut data = record_header(key, 0).to_vec();
                data.resize(len as usize, 0);
                last = Some(data);
            }
            Step::Write { offset, .. } => {
                assert!(offset / 4096 < region_pages, "write beyond region");
                writes += 1;
            }
            Step::Compute { instructions } => assert!(instructions > 0),
            Step::Finish => break,
        }
    }
    (reads, writes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FIO: all accesses in range, deterministic, right op count.
    #[test]
    fn fio_wellformed(seed: u64, pages in 1u64..4096, ops in 1u64..200) {
        let mut a = FioRandRead::new(RegionId(0), pages, ops, Prng::seed_from(seed));
        let (reads, writes) = drive(&mut a, pages, 10_000);
        prop_assert_eq!(reads, ops);
        prop_assert_eq!(writes, 0);
        prop_assert_eq!(a.ops_done(), ops);
        // Determinism: two instances with the same seed emit identical
        // streams.
        let mut b1 = FioRandRead::new(RegionId(0), pages, ops, Prng::seed_from(seed));
        let mut b2 = FioRandRead::new(RegionId(0), pages, ops, Prng::seed_from(seed));
        for _ in 0..(2 * ops + 1) {
            prop_assert_eq!(b1.next(None), b2.next(None));
        }
    }

    /// Every YCSB kind produces only well-formed, in-range steps and
    /// finishes with verification clean when fed correct data.
    #[test]
    fn ycsb_wellformed(seed: u64, kind_idx in 0usize..6, ops in 1u64..150) {
        let kind = YcsbKind::ALL[kind_idx];
        let records = 256u64;
        let capacity = 512u64;
        let db = MiniDb::new(RegionId(0), records, capacity);
        let mut w = Ycsb::new(kind, db, ops, Prng::seed_from(seed));
        let (reads, writes) = drive(&mut w, capacity, 100_000);
        prop_assert_eq!(w.ops_done(), ops);
        prop_assert_eq!(w.verify_failures(), 0);
        match kind {
            YcsbKind::C => prop_assert_eq!(writes, 0),
            YcsbKind::A | YcsbKind::F => prop_assert!(writes > 0 || ops < 6),
            _ => {}
        }
        prop_assert!(reads + writes >= ops, "every op touches the store");
    }

    /// DBBench verifies clean against correct headers for any seed.
    #[test]
    fn dbbench_wellformed(seed: u64, ops in 1u64..150) {
        let db = MiniDb::new(RegionId(0), 128, 128);
        let mut w = DbBenchReadRandom::new(db, ops, Prng::seed_from(seed));
        let (reads, _) = drive(&mut w, 128, 10_000);
        prop_assert_eq!(reads, ops);
        prop_assert_eq!(w.verify_failures(), 0);
    }

    /// ScratchChurn against a perfect memory model never reports failures
    /// and its writes always follow a read of the same page.
    #[test]
    fn scratch_wellformed(seed: u64, pages in 1u64..256, ops in 1u64..150) {
        let mut w = ScratchChurn::new(RegionId(0), pages, ops, Prng::seed_from(seed));
        let mut mem: std::collections::HashMap<u64, u64> = Default::default();
        let mut last: Option<Vec<u8>> = None;
        loop {
            let step = w.next(last.as_deref());
            last = None;
            step.validate();
            match step {
                Step::Read { offset, .. } => {
                    let v = mem.get(&(offset / 4096)).copied().unwrap_or(0);
                    last = Some(v.to_le_bytes().to_vec());
                }
                Step::Write { offset, data, .. } => {
                    mem.insert(offset / 4096, u64::from_le_bytes(data[..8].try_into().unwrap()));
                }
                Step::Compute { .. } => {}
                Step::Finish => break,
            }
        }
        prop_assert_eq!(w.ops_done(), ops);
        prop_assert_eq!(w.verify_failures(), 0);
    }
}

