//! `hwdp` — command-line driver for the hardware-based demand paging
//! simulator (reproduction of "A Case for Hardware-Based Demand Paging",
//! ISCA 2020).
//!
//! ```text
//! hwdp fio  [--mode osdp|hwdp|sw-only] [--threads N] [--ratio R] [--ops N]
//!           [--device zssd|optane|pmm] [--seq] [--prefetch N] [--readahead N]
//! hwdp ycsb [--kind a..f] [--mode ...] [--threads N] [--ratio R] [--ops N]
//! hwdp anon [--mode ...] [--ratio R] [--ops N]
//! hwdp anatomy [--device ...]
//! hwdp sweep [--name S] [--scenarios a,b] [--modes ...] [--workers N] ...
//! hwdp chaos [--name S] [--seed N] [--jobs N] [--no-crashes] [--out DIR]
//! hwdp compare --baseline FILE --current FILE [--threshold PCT]
//! hwdp config
//! hwdp help
//! ```

#![forbid(unsafe_code)]

mod args;

use std::process::ExitCode;

use args::{ArgError, Args};
use hwdp_core::anatomy::{hwdp_anatomy, osdp_anatomy, swonly_anatomy};
use hwdp_core::{Mode, RunResult, SystemBuilder, SystemConfig};
use hwdp_harness as harness;
use hwdp_sim::rng::Prng;
use hwdp_sim::SanitizeLevel;
use hwdp_sim::time::Duration;
use hwdp_workloads::{
    DbBenchReadRandom, FioRandRead, FioSeqRead, MiniDb, ScratchChurn, Workload, Ycsb,
};

const HELP: &str = "\
hwdp — hardware-based demand paging simulator (ISCA 2020 reproduction)

USAGE:
  hwdp <command> [options]

COMMANDS:
  fio       FIO mmap engine: 4 KiB reads over a cold mapped file
  ycsb      YCSB A-F on the MiniDB NoSQL store (dataset ratio x memory)
  dbbench   DBBench readrandom on MiniDB
  anon      anonymous-memory churn (zero-fill + swap, value-verified)
  anatomy   closed-form single-miss latency breakdowns (Figs. 3/11/17)
  sweep     run a scenario x config campaign and write BENCH_<name>.json
  chaos     seeded random fault campaign with a differential recovery
            oracle; writes CHAOS_<name>.json with shrunk reproducers
  compare   gate a result artifact against a stored baseline
  lint      determinism & panic-policy static analysis over the workspace
  config    print the Table II system configuration
  help      this text

COMMON OPTIONS:
  --mode osdp|hwdp|sw-only   demand-paging design   (default hwdp)
  --device zssd|optane|pmm   storage device         (default zssd)
  --threads N                client threads         (default 1)
  --ratio N                  dataset:memory ratio   (default 4)
  --ops N                    operations per thread  (default 2000)
  --memory N                 DRAM frames            (default 1024)
  --seed N                   RNG seed               (default 42)
  --sanitize off|cheap|full  hwdp-audit invariant checks (default off);
                             observation-only, results are unchanged
  --faults SPEC              deterministic fault injection on every device.
                             SPEC is comma-separated knobs:
                               media=R        transient media-error rate
                               persistent=R   persistent media-error rate
                               delay=RxF      delay rate R, inflation factor F
                               drop=R         dropped-completion rate
                               qfull=RxL      queue-full window rate R, length L
                               crash=TxN      controller crash at T us (virtual),
                                              repeated N times T us apart
                               reset=US       controller reset latency in us
                               lba=LO-HI      restrict to an LBA range
                               writes         also target write commands
                             e.g. --faults media=0.05,delay=0.02x20
                             (all-zero rates are a no-op; seeded, reproducible)
  --tiers SPEC               tiered storage: data lives on a slow device and a
                             migration daemon promotes hot pages to a fast one.
                             SPEC is comma-separated knobs; fast/slow required:
                               fast:DEV       fast-tier device (zssd|optane|pmm)
                               slow:DEV       slow-tier (capacity) device
                               cap:PCT        fast-tier capacity, % of tracked
                                              pages (default 25)
                               policy:P       static|lru|threshold (default
                                              threshold)
                               period:US      migration-daemon tick in
                                              microseconds (default 150)
                               batch:N        max migrations per tick (default 8)
                             e.g. --tiers fast:pmm,slow:zssd
                             (omitting --tiers runs the paper's single device)

FIO OPTIONS:
  --seq                      sequential instead of random reads
  --prefetch N               SMU prefetch window (HWDP, section V)
  --readahead N              OS readahead window (disabled in the paper)

SWEEP OPTIONS (axes are comma-separated lists; cross product = campaign):
  --name S                   campaign name          (default sweep)
  --scenarios a,b            fio|dbbench|ycsb-a..f|anon|smt-<spec>|anatomy
                             (default fio; smt-<spec> is the Fig. 16 SMT
                             co-run, <spec> one of perlbench|gcc|mcf|lbm|
                             deepsjeng|xz)
  --modes a,b                osdp|hwdp|sw-only      (default osdp,hwdp)
  --devices a,b              zssd|optane|pmm        (default zssd)
  --threads-list a,b         client thread counts   (default 1)
  --ratios a,b               dataset:memory ratios  (default 2)
  --workers N                executor threads       (default 4)
  --out DIR                  artifact directory     (default .)
  --time-cap-ms MS           virtual-time cap per job (default 30000)
  --pin N                    pin workload thread i to hardware context N+i
                             (a co-run partner lands after the workload)
  --kpted-us US              kpted sync-scan period in microseconds
                             (default 1000; the Fig. 16 co-run uses 20000)
  --pmshr N                  PMSHR entries          (default: paper's 32)
  --free-queue N             free-page queue depth  (default: paper value)
  --no-kpoold                disable the kpoold refill daemon
  --kpoold-us US             kpoold wake period in microseconds
  --per-core-queues          per-core free-page queues instead of shared
  --long-io-us US            long-latency miss timeout in microseconds
                             (default: always stall, never context-switch)
  --readahead N              OS readahead window in pages (default 0)
  --prefetch N               SMU prefetch window in pages (default 0)
  --repeats K                run each job K times with derived per-repeat
                             seeds; metrics become mean + /stddev + /ci95
                             keys, and compare gates on CI overlap
  --fixed-seed               every job uses the campaign seed itself
  --resume                   reuse completed jobs from an existing artifact
  --baseline FILE            also gate the fresh artifact against FILE
  --job-timeout-ms MS        per-job wall-clock watchdog: a job exceeding
                             MS real milliseconds is abandoned and recorded
                             as a typed failure (default: no watchdog)
  (multi-thread jobs export per-thread reports into a `threads` array;
  with --sanitize, sweep also writes AUDIT_<name>.json and exits
  nonzero when any invariant violation was detected)

CHAOS OPTIONS:
  --name S                   campaign name, writes CHAOS_<S>.json (default chaos)
  --seed N                   master seed; plans derive from it  (default 42)
  --jobs N                   fault plans to run through the oracle (default 8)
  --no-crashes               transient faults only, no controller crashes
  --sanitize off|cheap|full  faulted-run sanitize level (default full; the
                             fault-free twin always runs full)
  --out DIR                  artifact directory     (default .)
  (each job runs next to a fault-free twin with the same seed; the oracle
  requires a clean audit, matching content digests, monotonically degraded
  counters, and every verification failure accounted for by a surfaced
  typed IoError. Failing plans are shrunk to a minimal reproducer and the
  command exits nonzero.)

COMPARE OPTIONS:
  --baseline FILE            stored BENCH_*.json to gate against (required)
  --current FILE             freshly produced artifact (required)
  --threshold PCT            max tolerated regression (default 5)

LINT OPTIONS:
  --deny                     exit nonzero on any unsuppressed finding (CI)
  --json                     machine-readable report on stdout
  --rules                    print the rule table and exit
  --metric-keys              print the generated metric-key registry (JSON):
                             every string key at an export_metrics sink
  --call-graph               print the workspace call graph (JSON): fn nodes,
                             resolved edges, event-loop/completion/public root
                             sets, and per-rule reachable counts
  --root DIR                 workspace root (default: discovered upward)
  --write-baseline           rewrite baselines/LINT_allow.txt from findings
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        println!("{HELP}");
        return ExitCode::SUCCESS;
    }
    match run(raw) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try `hwdp help`");
            ExitCode::FAILURE
        }
    }
}

fn run(raw: Vec<String>) -> Result<ExitCode, ArgError> {
    let args = Args::parse(raw)?;
    match args.command.as_str() {
        "help" | "--help" | "-h" => println!("{HELP}"),
        "config" => println!("{}", SystemConfig::paper_default(Mode::Hwdp).describe()),
        "anatomy" => anatomy(&args)?,
        "fio" => fio(&args)?,
        "ycsb" | "dbbench" => kv(&args)?,
        "anon" => anon(&args)?,
        "sweep" => return sweep(&args),
        "chaos" => return chaos_cmd(&args),
        "compare" => return compare_cmd(&args),
        "lint" => return lint_cmd(&args),
        other => return Err(ArgError(format!("unknown command '{other}'"))),
    }
    Ok(ExitCode::SUCCESS)
}

/// Parses the common `--sanitize off|cheap|full` option (default `off`).
fn sanitize_level(args: &Args) -> Result<SanitizeLevel, ArgError> {
    match args.get("sanitize") {
        None => Ok(SanitizeLevel::Off),
        Some(s) => SanitizeLevel::parse(s)
            .ok_or_else(|| ArgError(format!("--sanitize: unknown level '{s}' (off|cheap|full)"))),
    }
}

/// Parses the common `--faults SPEC` option (default: no injection).
fn fault_config(args: &Args) -> Result<Option<hwdp_nvme::fault::FaultConfig>, ArgError> {
    match args.get("faults") {
        None => Ok(None),
        Some(s) => hwdp_nvme::fault::FaultConfig::parse(s).map(Some).ok_or_else(|| {
            ArgError(format!(
                "--faults: malformed spec '{s}' (e.g. media=0.05,delay=0.02x20,drop=0.01)"
            ))
        }),
    }
}

/// Parses the common `--tiers SPEC` option (default: single device).
fn tier_spec(args: &Args) -> Result<Option<harness::TierSpec>, ArgError> {
    match args.get("tiers") {
        None => Ok(None),
        Some(s) => harness::TierSpec::parse(s)
            .map(Some)
            .map_err(|e| ArgError(format!("--tiers: {e}"))),
    }
}

/// Expands the `sweep` axis options into a harness campaign.
fn sweep_campaign(args: &Args) -> Result<harness::Campaign, ArgError> {
    let parse_axis = |name: &str, default: &str, f: &dyn Fn(&str) -> Option<String>| {
        let mut bad = Vec::new();
        let ok: Vec<String> = args
            .list(name, default)
            .iter()
            .filter_map(|s| f(s).or_else(|| {
                bad.push(s.clone());
                None
            }))
            .collect();
        if bad.is_empty() {
            Ok(ok)
        } else {
            Err(ArgError(format!("--{name}: unknown value(s) {bad:?}")))
        }
    };
    let scenarios: Vec<harness::Scenario> = parse_axis("scenarios", "fio", &|s| {
        harness::Scenario::parse(s).map(|_| s.to_string())
    })?
    .iter()
    .map(|s| harness::Scenario::parse(s).expect("validated"))
    .collect();
    let modes: Vec<Mode> = args
        .list("modes", "osdp,hwdp")
        .iter()
        .map(|m| match m.as_str() {
            "osdp" => Ok(Mode::Osdp),
            "hwdp" => Ok(Mode::Hwdp),
            "sw" | "sw-only" | "swonly" => Ok(Mode::SwOnly),
            other => Err(ArgError(format!("--modes: unknown mode '{other}'"))),
        })
        .collect::<Result<_, _>>()?;
    let devices: Vec<harness::DeviceKind> = args
        .list("devices", "zssd")
        .iter()
        .map(|d| harness::DeviceKind::parse(d).map_err(|e| ArgError(format!("--devices: {e}"))))
        .collect::<Result<_, _>>()?;
    let threads: Vec<usize> = args
        .list("threads-list", "1")
        .iter()
        .map(|t| t.parse().map_err(|_| ArgError(format!("--threads-list: bad count '{t}'"))))
        .collect::<Result<_, _>>()?;
    let ratios: Vec<f64> = args
        .list("ratios", "2")
        .iter()
        .map(|r| r.parse().map_err(|_| ArgError(format!("--ratios: bad ratio '{r}'"))))
        .collect::<Result<_, _>>()?;

    let mut grid = harness::Grid::new(
        args.get("name").unwrap_or("sweep"),
        args.num("seed", 42)?,
    )
    .scenarios(scenarios)
    .modes(modes)
    .devices(devices)
    .threads(threads)
    .ratios(ratios)
    .memory_frames(args.num("memory", 1024)? as usize)
    .ops(args.num("ops", 2000)?)
    .sanitize(sanitize_level(args)?);
    if let Some(ms) = args.get("time-cap-ms") {
        let ms = ms.parse().map_err(|_| ArgError(format!("--time-cap-ms: bad value '{ms}'")))?;
        grid = grid.time_cap_ms(ms);
    }
    if let Some(pin) = args.get("pin") {
        let pin = pin.parse().map_err(|_| ArgError(format!("--pin: bad context '{pin}'")))?;
        grid = grid.pin(pin);
    }
    if let Some(us) = args.get("kpted-us") {
        let us: u64 =
            us.parse().map_err(|_| ArgError(format!("--kpted-us: bad period '{us}'")))?;
        grid = grid.tweak(|j| j.kpted_period_us = us);
    }
    // Ablation knobs (Fig. 18-style sensitivity sweeps). Each maps onto one
    // JobSpec field; unset flags leave the paper defaults in place.
    if let Some(n) = args.get("pmshr") {
        let n: usize = n.parse().map_err(|_| ArgError(format!("--pmshr: bad entry count '{n}'")))?;
        grid = grid.tweak(|j| j.pmshr_entries = Some(n));
    }
    if let Some(n) = args.get("free-queue") {
        let n: usize = n.parse().map_err(|_| ArgError(format!("--free-queue: bad depth '{n}'")))?;
        grid = grid.tweak(|j| j.free_queue_depth = Some(n));
    }
    if args.flag("no-kpoold") {
        grid = grid.tweak(|j| j.kpoold_enabled = false);
    }
    if let Some(us) = args.get("kpoold-us") {
        let us: u64 =
            us.parse().map_err(|_| ArgError(format!("--kpoold-us: bad period '{us}'")))?;
        grid = grid.tweak(|j| j.kpoold_period_us = Some(us));
    }
    if args.flag("per-core-queues") {
        grid = grid.tweak(|j| j.per_core_free_queues = true);
    }
    if let Some(us) = args.get("long-io-us") {
        let us: u64 =
            us.parse().map_err(|_| ArgError(format!("--long-io-us: bad timeout '{us}'")))?;
        grid = grid.tweak(|j| j.long_io_timeout_us = Some(us));
    }
    if let Some(n) = args.get("readahead") {
        let n: usize = n.parse().map_err(|_| ArgError(format!("--readahead: bad window '{n}'")))?;
        grid = grid.tweak(|j| j.readahead_pages = n);
    }
    if let Some(n) = args.get("prefetch") {
        let n: usize = n.parse().map_err(|_| ArgError(format!("--prefetch: bad window '{n}'")))?;
        grid = grid.tweak(|j| j.smu_prefetch_pages = n);
    }
    let repeats = args.num("repeats", 1)?;
    if repeats > 1 {
        grid = grid.repeats(repeats as u32);
    }
    if let Some(faults) = fault_config(args)? {
        grid = grid.faults(faults);
    }
    if let Some(tiers) = tier_spec(args)? {
        grid = grid.tiers(tiers);
    }
    if args.flag("fixed-seed") {
        grid = grid.fixed_seed();
    }
    if grid.is_empty() {
        return Err(ArgError("sweep has no jobs (an axis list is empty)".into()));
    }
    Ok(grid.expand())
}

fn sweep(args: &Args) -> Result<ExitCode, ArgError> {
    let campaign = sweep_campaign(args)?;
    let workers = args.num("workers", 4)? as usize;
    eprintln!("campaign '{}': {} job(s) on {} worker(s)", campaign.name, campaign.jobs.len(), workers);
    let dir = std::path::Path::new(args.get("out").unwrap_or("."));
    // --resume reuses completed jobs from an existing artifact at the
    // output path; a half-written campaign finishes with only the missing
    // or failed jobs rerun.
    let prior = if args.flag("resume") {
        let prior_path = dir.join(format!("BENCH_{}.json", campaign.name));
        match std::fs::read_to_string(&prior_path) {
            Ok(text) => {
                let a = harness::Artifact::parse(&text)
                    .map_err(|e| ArgError(format!("--resume: {}: {e}", prior_path.display())))?;
                eprintln!("resuming from {}", prior_path.display());
                Some(a)
            }
            Err(_) => None, // nothing to resume from; run everything
        }
    } else {
        None
    };
    // --job-timeout-ms arms the per-job wall-clock watchdog: a hung job
    // becomes a typed failure instead of wedging the whole campaign.
    let timeout_ms = match args.get("job-timeout-ms") {
        None => None,
        Some(_) => Some(args.num("job-timeout-ms", 0)?),
    };
    let mut progress = harness::progress::Stderr::new(campaign.jobs.len());
    let artifact = harness::execute_campaign_resume(
        &campaign,
        prior.as_ref(),
        workers,
        timeout_ms,
        &mut progress,
    );
    std::fs::create_dir_all(dir)
        .map_err(|e| ArgError(format!("cannot create {}: {e}", dir.display())))?;
    let path = dir.join(artifact.file_name());
    std::fs::write(&path, artifact.to_json_string())
        .map_err(|e| ArgError(format!("cannot write {}: {e}", path.display())))?;
    println!("wrote {}", path.display());
    let failed = artifact.jobs.iter().filter(|j| !j.is_ok()).count();
    // Write the sanitizer report before any early exit so CI can archive
    // it even when jobs failed.
    let level = sanitize_level(args)?;
    let audit_clean = if level == SanitizeLevel::Off {
        true
    } else {
        write_audit_report(dir, &artifact, level)?
    };
    if failed > 0 {
        eprintln!("{failed} job(s) failed");
        return Ok(ExitCode::FAILURE);
    }
    if !audit_clean {
        return Ok(ExitCode::FAILURE);
    }
    if let Some(baseline_path) = args.get("baseline") {
        return gate(baseline_path, &artifact, args);
    }
    Ok(ExitCode::SUCCESS)
}

/// `hwdp chaos`: seeded random fault campaign through the differential
/// recovery oracle. Writes `CHAOS_<name>.json` and exits nonzero when any
/// plan broke the recovery contract.
fn chaos_cmd(args: &Args) -> Result<ExitCode, ArgError> {
    let mut cfg =
        harness::ChaosConfig::new(args.get("name").unwrap_or("chaos"), args.num("seed", 42)?);
    cfg.jobs = args.num("jobs", 8)? as usize;
    cfg.crashes = !args.flag("no-crashes");
    if args.get("sanitize").is_some() {
        cfg.sanitize = sanitize_level(args)?;
    }
    eprintln!(
        "chaos campaign '{}': {} plan(s), crashes {}",
        cfg.name,
        cfg.jobs,
        if cfg.crashes { "on" } else { "off" },
    );
    let mut progress = harness::progress::Stderr::new(cfg.jobs);
    let report = harness::run_chaos(&cfg, &mut progress);
    let dir = std::path::Path::new(args.get("out").unwrap_or("."));
    std::fs::create_dir_all(dir)
        .map_err(|e| ArgError(format!("cannot create {}: {e}", dir.display())))?;
    let path = dir.join(report.file_name());
    std::fs::write(&path, report.to_json().pretty())
        .map_err(|e| ArgError(format!("cannot write {}: {e}", path.display())))?;
    println!("wrote {}", path.display());
    println!(
        "{} controller reset(s), {} in-flight command(s) lost, {} oracle mismatch(es)",
        report.controller_resets, report.crash_ios_lost, report.oracle_mismatches,
    );
    if !report.is_clean() {
        for f in &report.failures {
            eprintln!(
                "plan {} ({}): {} — minimal reproducer: --faults {} --seed {}",
                f.index, f.label, f.reason, f.minimal_faults, f.seed,
            );
        }
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// Writes `AUDIT_<campaign>.json` summarizing hwdp-audit violations found
/// across the campaign's jobs. Returns `true` when every invariant held.
fn write_audit_report(
    dir: &std::path::Path,
    artifact: &harness::Artifact,
    level: SanitizeLevel,
) -> Result<bool, ArgError> {
    let mut by_invariant = std::collections::BTreeMap::<String, f64>::new();
    for job in &artifact.jobs {
        for (k, v) in &job.metrics {
            if let Some(name) = k.strip_prefix("sanitize/") {
                *by_invariant.entry(name.to_string()).or_insert(0.0) += v;
            }
        }
    }
    let total: f64 = by_invariant.values().sum();
    let json = harness::Json::obj([
        ("campaign", harness::Json::str(artifact.campaign.clone())),
        ("level", harness::Json::str(level.name())),
        ("jobs", harness::Json::Num(artifact.jobs.len() as f64)),
        ("violations_total", harness::Json::Num(total)),
        (
            "violations",
            harness::Json::Obj(
                by_invariant.into_iter().map(|(k, v)| (k, harness::Json::Num(v))).collect(),
            ),
        ),
    ]);
    let path = dir.join(format!("AUDIT_{}.json", artifact.campaign));
    std::fs::write(&path, json.pretty())
        .map_err(|e| ArgError(format!("cannot write {}: {e}", path.display())))?;
    println!("wrote {}", path.display());
    if total > 0.0 {
        eprintln!("hwdp-audit: {total} invariant violation(s) detected");
        Ok(false)
    } else {
        Ok(true)
    }
}

fn compare_cmd(args: &Args) -> Result<ExitCode, ArgError> {
    let baseline_path =
        args.get("baseline").ok_or_else(|| ArgError("compare needs --baseline FILE".into()))?;
    let current_path =
        args.get("current").ok_or_else(|| ArgError("compare needs --current FILE".into()))?;
    let current = read_artifact(current_path)?;
    gate(baseline_path, &current, args)
}

fn read_artifact(path: &str) -> Result<harness::Artifact, ArgError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    harness::Artifact::parse(&text).map_err(|e| ArgError(format!("{path}: {e}")))
}

/// Compares `current` against the artifact stored at `baseline_path` and
/// converts the verdict into an exit code (nonzero on regression).
fn gate(baseline_path: &str, current: &harness::Artifact, args: &Args) -> Result<ExitCode, ArgError> {
    let baseline = read_artifact(baseline_path)?;
    let thresholds = harness::Thresholds {
        relative: args.float("threshold", 5.0)? / 100.0,
        ..harness::Thresholds::default()
    };
    let report = harness::compare::compare(&baseline, current, &thresholds);
    print!("{}", report.render());
    Ok(if report.passed() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

/// `hwdp lint [--json] [--deny] [--rules] [--metric-keys] [--call-graph]
/// [--root DIR] [--write-baseline]`.
fn lint_cmd(args: &Args) -> Result<ExitCode, ArgError> {
    if args.flag("rules") {
        println!("{:<20} {:<34} {}", "RULE", "SCOPE", "GUARDS AGAINST");
        for r in &hwdp_lint::rules::RULES {
            println!("{:<20} {:<34} {}", r.id, r.scope, r.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }
    let root = match args.get("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir()
                .map_err(|e| ArgError(format!("cannot determine working directory: {e}")))?;
            hwdp_lint::find_workspace_root(&cwd).ok_or_else(|| {
                ArgError("no workspace root found upward of here; pass --root DIR".into())
            })?
        }
    };
    if args.flag("metric-keys") {
        let keys = hwdp_lint::metric_registry(&root)
            .map_err(|e| ArgError(format!("lint failed under {}: {e}", root.display())))?;
        print!("{}", hwdp_lint::registry_to_json(&keys).pretty());
        return Ok(ExitCode::SUCCESS);
    }
    if args.flag("call-graph") {
        let graph = hwdp_lint::call_graph(&root)
            .map_err(|e| ArgError(format!("lint failed under {}: {e}", root.display())))?;
        print!("{}", hwdp_lint::graph_to_json(&graph).pretty());
        return Ok(ExitCode::SUCCESS);
    }
    let report = hwdp_lint::lint_workspace(&root)
        .map_err(|e| ArgError(format!("lint failed under {}: {e}", root.display())))?;

    if args.flag("write-baseline") {
        let path = hwdp_lint::baseline_path(&root);
        std::fs::write(&path, hwdp_lint::baseline::render(&report.findings))
            .map_err(|e| ArgError(format!("cannot write {}: {e}", path.display())))?;
        println!(
            "wrote {} ({} finding(s) grandfathered)",
            path.display(),
            report.findings.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline_file = hwdp_lint::baseline_path(&root);
    let entries = match std::fs::read_to_string(&baseline_file) {
        Ok(text) => hwdp_lint::baseline::parse(&text)
            .map_err(|e| ArgError(format!("{}: {e}", baseline_file.display())))?,
        Err(_) => Vec::new(),
    };
    let outcome = hwdp_lint::baseline::apply(report.findings.clone(), &entries);

    if args.flag("json") {
        let stripped = hwdp_lint::Report {
            findings: outcome.remaining.clone(),
            inline_suppressed: report.inline_suppressed,
            files_scanned: report.files_scanned,
        };
        print!("{}", stripped.to_json(outcome.grandfathered, outcome.stale.len()).pretty());
    } else {
        for f in &outcome.remaining {
            println!("{}", f.render());
        }
        for (entry, actual) in &outcome.stale {
            eprintln!(
                "note: stale baseline budget '{} {} {}' (now {actual}); tighten it or run --write-baseline",
                entry.count, entry.rule, entry.path
            );
        }
        eprintln!(
            "lint: {} file(s), {} finding(s), {} inline-suppressed, {} grandfathered",
            report.files_scanned,
            outcome.remaining.len(),
            report.inline_suppressed,
            outcome.grandfathered
        );
    }
    if args.flag("deny") && !outcome.remaining.is_empty() {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn builder(args: &Args) -> Result<(SystemBuilder, usize, u64, u64), ArgError> {
    let memory = args.num("memory", 1024)? as usize;
    let threads = args.num("threads", 1)? as usize;
    let ratio = args.num("ratio", 4)?;
    let ops = args.num("ops", 2000)?;
    let mut b = SystemBuilder::new(args.mode()?)
        .memory_frames(memory)
        .device(args.device()?)
        .kpted_period(Duration::from_millis(1))
        .sanitize(sanitize_level(args)?)
        .seed(args.num("seed", 42)?);
    if let Some(faults) = fault_config(args)? {
        b = b.faults(faults);
    }
    if let Some(tiers) = tier_spec(args)? {
        b = b.tiers(tiers.to_config());
    }
    Ok((b, threads, ratio, ops))
}

fn report(label: &str, r: &RunResult) {
    println!("== {label} ==");
    println!("  elapsed          {}", r.elapsed);
    println!("  operations       {}  ({:.0} ops/s)", r.ops, r.throughput_ops_s());
    println!(
        "  read latency     mean {}  p50 {}  p99 {}",
        r.read_latency.mean(),
        r.read_latency.percentile(0.5),
        r.read_latency.percentile(0.99)
    );
    println!(
        "  page misses      {} (mean {})",
        r.miss_latency.count(),
        r.miss_latency.mean()
    );
    println!(
        "  handled by       hardware {}  OS major {}  OS minor {}  zero-fill {}",
        r.smu.completed, r.os.major_faults, r.os.minor_faults, r.smu.zero_fills
    );
    println!(
        "  device           {} reads, {} writes; {} evictions, {} writebacks",
        r.device_reads, r.device_writes, r.os.evictions, r.os.writebacks
    );
    println!("  user IPC         {:.3}", r.user_ipc());
    println!(
        "  kernel instr     app {}  kpted {}  kpoold {}",
        r.kernel.app_kernel_instr, r.kernel.kpted_instr, r.kernel.kpoold_instr
    );
    if r.smu_prefetches + r.readahead_reads > 0 {
        println!(
            "  prefetching      SMU {}  OS readahead {}",
            r.smu_prefetches, r.readahead_reads
        );
    }
    let p = &r.perf;
    if p.io_retries + p.io_timeouts + p.smu_fallbacks_fault + p.io_errors_surfaced > 0 {
        println!(
            "  fault recovery   {} retries, {} timeouts, {} SMU fallbacks, {} errors surfaced",
            p.io_retries, p.io_timeouts, p.smu_fallbacks_fault, p.io_errors_surfaced
        );
    }
    if r.threads.len() > 1 {
        for (i, t) in r.threads.iter().enumerate() {
            let hw = t
                .hw_context
                .map_or_else(|| "-".to_string(), |h| format!("{h}"));
            println!(
                "  thread {i:<2}        {:<12} hw {hw:<3} ops {:<8} IPC {:.3} (adj {:.3}, warmth {:.2})",
                t.name,
                t.ops,
                t.user_ipc(),
                t.adjusted_user_ipc(),
                t.pollution_warmth
            );
        }
    }
    if let Some(t) = &r.tier {
        println!(
            "  tiering          {} promotions, {} demotions, {} aborts; fast-hit {:.1}% ({:.1}% -> {:.1}%)",
            t.promotions,
            t.demotions,
            t.aborts,
            t.fast_hit_ratio * 100.0,
            t.fast_hit_ratio_early * 100.0,
            t.fast_hit_ratio_late * 100.0
        );
    }
    match r.verify_failures() {
        0 => println!("  data integrity   ok (every read verified)"),
        n => println!("  data integrity   {n} FAILURES"),
    }
    if r.audit.checks > 0 {
        match r.audit.violations.len() {
            0 => println!("  hwdp-audit       clean ({} invariant checks)", r.audit.checks),
            n => {
                println!("  hwdp-audit       {n} VIOLATION(S) in {} checks", r.audit.checks);
                for v in r.audit.violations.iter().take(8) {
                    println!("                   {v}");
                }
            }
        }
    }
}

fn fio(args: &Args) -> Result<(), ArgError> {
    let (mut b, threads, ratio, ops) = builder(args)?;
    b = b
        .smu_prefetch_pages(args.num("prefetch", 0)? as usize)
        .readahead_pages(args.num("readahead", 0)? as usize);
    let mut sys = b.build();
    let pages = (sys.config().memory_frames as u64) * ratio;
    let file = sys.create_pattern_file("fio-data", pages);
    let region = sys.map_file(file);
    for i in 0..threads {
        let w: Box<dyn Workload> = if args.flag("seq") {
            Box::new(FioSeqRead::new(region, pages, ops))
        } else {
            Box::new(FioRandRead::new(region, pages, ops, Prng::seed_from(1000 + i as u64)))
        };
        sys.spawn(w, 1.8, None);
    }
    let r = sys.run(Duration::from_secs(120));
    report(
        &format!(
            "fio {} / {} / {} threads / dataset {ratio}x memory",
            if args.flag("seq") { "seqread" } else { "randread" },
            sys.config().mode.label(),
            threads
        ),
        &r,
    );
    Ok(())
}

fn kv(args: &Args) -> Result<(), ArgError> {
    let (b, threads, ratio, ops) = builder(args)?;
    let mut sys = b.build();
    let records = (sys.config().memory_frames as u64) * ratio;
    let capacity = records + records / 4;
    let file = sys.create_kv_file("db", records, capacity);
    let region = sys.map_file(file);
    let label;
    for i in 0..threads {
        let db = MiniDb::new(region, records, capacity);
        let rng = Prng::seed_from(2000 + i as u64);
        let w: Box<dyn Workload> = if args.command == "dbbench" {
            Box::new(DbBenchReadRandom::new(db, ops, rng))
        } else {
            Box::new(Ycsb::new(args.ycsb_kind()?, db, ops, rng))
        };
        sys.spawn(w, 1.6, None);
    }
    label = format!(
        "{} / {} / {} threads / dataset {ratio}x memory",
        if args.command == "dbbench" {
            "dbbench readrandom".to_string()
        } else {
            format!("ycsb-{}", args.get("kind").unwrap_or("c"))
        },
        sys.config().mode.label(),
        threads
    );
    let r = sys.run(Duration::from_secs(120));
    report(&label, &r);
    Ok(())
}

fn anon(args: &Args) -> Result<(), ArgError> {
    let (b, threads, ratio, ops) = builder(args)?;
    let mut sys = b.build();
    let pages = (sys.config().memory_frames as u64) * ratio;
    let region = sys.map_anon(pages);
    for i in 0..threads {
        sys.spawn(
            Box::new(ScratchChurn::new(region, pages, ops, Prng::seed_from(3000 + i as u64))),
            1.6,
            None,
        );
    }
    let r = sys.run(Duration::from_secs(120));
    report(
        &format!(
            "anonymous churn / {} / {} threads / region {ratio}x memory",
            sys.config().mode.label(),
            threads
        ),
        &r,
    );
    Ok(())
}

fn anatomy(args: &Args) -> Result<(), ArgError> {
    let dev = args.device()?;
    println!("single page-miss anatomy on {} (4 KiB read: {}):\n", dev.name, dev.read_4k);
    for a in [
        osdp_anatomy(&hwdp_os::costs::OsdpCosts::paper_default(), &dev),
        swonly_anatomy(&hwdp_os::costs::SwOnlyCosts::paper_default(), &dev),
        hwdp_anatomy(&hwdp_smu::timing::SmuTiming::paper_default(), &dev),
    ] {
        println!("{:<8} total {}  (host overhead {})", a.scheme, a.total(), a.overhead());
        for c in &a.components {
            println!("    {:<34} {}", c.label, c.time);
        }
        println!();
    }
    Ok(())
}
