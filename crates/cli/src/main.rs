//! `hwdp` — command-line driver for the hardware-based demand paging
//! simulator (reproduction of "A Case for Hardware-Based Demand Paging",
//! ISCA 2020).
//!
//! ```text
//! hwdp fio  [--mode osdp|hwdp|sw-only] [--threads N] [--ratio R] [--ops N]
//!           [--device zssd|optane|pmm] [--seq] [--prefetch N] [--readahead N]
//! hwdp ycsb [--kind a..f] [--mode ...] [--threads N] [--ratio R] [--ops N]
//! hwdp anon [--mode ...] [--ratio R] [--ops N]
//! hwdp anatomy [--device ...]
//! hwdp config
//! hwdp help
//! ```

mod args;

use std::process::ExitCode;

use args::{ArgError, Args};
use hwdp_core::anatomy::{hwdp_anatomy, osdp_anatomy, swonly_anatomy};
use hwdp_core::{Mode, RunResult, SystemBuilder, SystemConfig};
use hwdp_sim::rng::Prng;
use hwdp_sim::time::Duration;
use hwdp_workloads::{
    DbBenchReadRandom, FioRandRead, FioSeqRead, MiniDb, ScratchChurn, Workload, Ycsb,
};

const HELP: &str = "\
hwdp — hardware-based demand paging simulator (ISCA 2020 reproduction)

USAGE:
  hwdp <command> [options]

COMMANDS:
  fio       FIO mmap engine: 4 KiB reads over a cold mapped file
  ycsb      YCSB A-F on the MiniDB NoSQL store (dataset ratio x memory)
  dbbench   DBBench readrandom on MiniDB
  anon      anonymous-memory churn (zero-fill + swap, value-verified)
  anatomy   closed-form single-miss latency breakdowns (Figs. 3/11/17)
  config    print the Table II system configuration
  help      this text

COMMON OPTIONS:
  --mode osdp|hwdp|sw-only   demand-paging design   (default hwdp)
  --device zssd|optane|pmm   storage device         (default zssd)
  --threads N                client threads         (default 1)
  --ratio N                  dataset:memory ratio   (default 4)
  --ops N                    operations per thread  (default 2000)
  --memory N                 DRAM frames            (default 1024)
  --seed N                   RNG seed               (default 42)

FIO OPTIONS:
  --seq                      sequential instead of random reads
  --prefetch N               SMU prefetch window (HWDP, section V)
  --readahead N              OS readahead window (disabled in the paper)
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        println!("{HELP}");
        return ExitCode::SUCCESS;
    }
    match run(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try `hwdp help`");
            ExitCode::FAILURE
        }
    }
}

fn run(raw: Vec<String>) -> Result<(), ArgError> {
    let args = Args::parse(raw)?;
    match args.command.as_str() {
        "help" | "--help" | "-h" => println!("{HELP}"),
        "config" => println!("{}", SystemConfig::paper_default(Mode::Hwdp).describe()),
        "anatomy" => anatomy(&args)?,
        "fio" => fio(&args)?,
        "ycsb" | "dbbench" => kv(&args)?,
        "anon" => anon(&args)?,
        other => return Err(ArgError(format!("unknown command '{other}'"))),
    }
    Ok(())
}

fn builder(args: &Args) -> Result<(SystemBuilder, usize, u64, u64), ArgError> {
    let memory = args.num("memory", 1024)? as usize;
    let threads = args.num("threads", 1)? as usize;
    let ratio = args.num("ratio", 4)?;
    let ops = args.num("ops", 2000)?;
    let b = SystemBuilder::new(args.mode()?)
        .memory_frames(memory)
        .device(args.device()?)
        .kpted_period(Duration::from_millis(1))
        .seed(args.num("seed", 42)?);
    Ok((b, threads, ratio, ops))
}

fn report(label: &str, r: &RunResult) {
    println!("== {label} ==");
    println!("  elapsed          {}", r.elapsed);
    println!("  operations       {}  ({:.0} ops/s)", r.ops, r.throughput_ops_s());
    println!(
        "  read latency     mean {}  p50 {}  p99 {}",
        r.read_latency.mean(),
        r.read_latency.percentile(0.5),
        r.read_latency.percentile(0.99)
    );
    println!(
        "  page misses      {} (mean {})",
        r.miss_latency.count(),
        r.miss_latency.mean()
    );
    println!(
        "  handled by       hardware {}  OS major {}  OS minor {}  zero-fill {}",
        r.smu.completed, r.os.major_faults, r.os.minor_faults, r.smu.zero_fills
    );
    println!(
        "  device           {} reads, {} writes; {} evictions, {} writebacks",
        r.device_reads, r.device_writes, r.os.evictions, r.os.writebacks
    );
    println!("  user IPC         {:.3}", r.user_ipc());
    println!(
        "  kernel instr     app {}  kpted {}  kpoold {}",
        r.kernel.app_kernel_instr, r.kernel.kpted_instr, r.kernel.kpoold_instr
    );
    if r.smu_prefetches + r.readahead_reads > 0 {
        println!(
            "  prefetching      SMU {}  OS readahead {}",
            r.smu_prefetches, r.readahead_reads
        );
    }
    match r.verify_failures() {
        0 => println!("  data integrity   ok (every read verified)"),
        n => println!("  data integrity   {n} FAILURES"),
    }
}

fn fio(args: &Args) -> Result<(), ArgError> {
    let (mut b, threads, ratio, ops) = builder(args)?;
    b = b
        .smu_prefetch_pages(args.num("prefetch", 0)? as usize)
        .readahead_pages(args.num("readahead", 0)? as usize);
    let mut sys = b.build();
    let pages = (sys.config().memory_frames as u64) * ratio;
    let file = sys.create_pattern_file("fio-data", pages);
    let region = sys.map_file(file);
    for i in 0..threads {
        let w: Box<dyn Workload> = if args.flag("seq") {
            Box::new(FioSeqRead::new(region, pages, ops))
        } else {
            Box::new(FioRandRead::new(region, pages, ops, Prng::seed_from(1000 + i as u64)))
        };
        sys.spawn(w, 1.8, None);
    }
    let r = sys.run(Duration::from_secs(120));
    report(
        &format!(
            "fio {} / {} / {} threads / dataset {ratio}x memory",
            if args.flag("seq") { "seqread" } else { "randread" },
            sys.config().mode.label(),
            threads
        ),
        &r,
    );
    Ok(())
}

fn kv(args: &Args) -> Result<(), ArgError> {
    let (b, threads, ratio, ops) = builder(args)?;
    let mut sys = b.build();
    let records = (sys.config().memory_frames as u64) * ratio;
    let capacity = records + records / 4;
    let file = sys.create_kv_file("db", records, capacity);
    let region = sys.map_file(file);
    let label;
    for i in 0..threads {
        let db = MiniDb::new(region, records, capacity);
        let rng = Prng::seed_from(2000 + i as u64);
        let w: Box<dyn Workload> = if args.command == "dbbench" {
            Box::new(DbBenchReadRandom::new(db, ops, rng))
        } else {
            Box::new(Ycsb::new(args.ycsb_kind()?, db, ops, rng))
        };
        sys.spawn(w, 1.6, None);
    }
    label = format!(
        "{} / {} / {} threads / dataset {ratio}x memory",
        if args.command == "dbbench" {
            "dbbench readrandom".to_string()
        } else {
            format!("ycsb-{}", args.get("kind").unwrap_or("c"))
        },
        sys.config().mode.label(),
        threads
    );
    let r = sys.run(Duration::from_secs(120));
    report(&label, &r);
    Ok(())
}

fn anon(args: &Args) -> Result<(), ArgError> {
    let (b, threads, ratio, ops) = builder(args)?;
    let mut sys = b.build();
    let pages = (sys.config().memory_frames as u64) * ratio;
    let region = sys.map_anon(pages);
    for i in 0..threads {
        sys.spawn(
            Box::new(ScratchChurn::new(region, pages, ops, Prng::seed_from(3000 + i as u64))),
            1.6,
            None,
        );
    }
    let r = sys.run(Duration::from_secs(120));
    report(
        &format!(
            "anonymous churn / {} / {} threads / region {ratio}x memory",
            sys.config().mode.label(),
            threads
        ),
        &r,
    );
    Ok(())
}

fn anatomy(args: &Args) -> Result<(), ArgError> {
    let dev = args.device()?;
    println!("single page-miss anatomy on {} (4 KiB read: {}):\n", dev.name, dev.read_4k);
    for a in [
        osdp_anatomy(&hwdp_os::costs::OsdpCosts::paper_default(), &dev),
        swonly_anatomy(&hwdp_os::costs::SwOnlyCosts::paper_default(), &dev),
        hwdp_anatomy(&hwdp_smu::timing::SmuTiming::paper_default(), &dev),
    ] {
        println!("{:<8} total {}  (host overhead {})", a.scheme, a.total(), a.overhead());
        for c in &a.components {
            println!("    {:<34} {}", c.label, c.time);
        }
        println!();
    }
    Ok(())
}
