//! Tiny dependency-free argument parsing for the `hwdp` CLI.

use std::collections::HashMap;

use hwdp_core::Mode;
use hwdp_nvme::profile::DeviceProfile;
use hwdp_workloads::YcsbKind;

/// Parsed command line: a subcommand plus `--key value` options and bare
/// `--flag`s.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// A parse or validation error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns an error when no subcommand is given or an option is
    /// missing its value.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut it = raw.into_iter().peekable();
        let command =
            it.next().ok_or_else(|| ArgError("missing subcommand; try `hwdp help`".into()))?;
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument '{arg}'")));
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    options.insert(key.to_string(), it.next().expect("peeked"));
                }
                _ => flags.push(key.to_string()),
            }
        }
        Ok(Args { command, options, flags })
    }

    /// A `--flag` with no value.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(|s| s.as_str())
    }

    /// A comma-separated list option (`--modes osdp,hwdp`), or `default`
    /// when absent. Empty segments are skipped.
    pub fn list(&self, name: &str, default: &str) -> Vec<String> {
        self.get(name)
            .unwrap_or(default)
            .split(',')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    }

    /// A floating-point option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error if the value does not parse.
    pub fn float(&self, name: &str, default: f64) -> Result<f64, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name} expects a number, got '{v}'"))),
        }
    }

    /// A numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error if the value does not parse.
    pub fn num(&self, name: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name} expects a number, got '{v}'"))),
        }
    }

    /// The `--mode` option (default HWDP).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown modes.
    pub fn mode(&self) -> Result<Mode, ArgError> {
        match self.get("mode").unwrap_or("hwdp") {
            "osdp" => Ok(Mode::Osdp),
            "hwdp" => Ok(Mode::Hwdp),
            "sw" | "sw-only" | "swonly" => Ok(Mode::SwOnly),
            other => Err(ArgError(format!("unknown --mode '{other}' (osdp|hwdp|sw-only)"))),
        }
    }

    /// The `--device` option (default Z-SSD).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown devices.
    pub fn device(&self) -> Result<DeviceProfile, ArgError> {
        match self.get("device").unwrap_or("zssd") {
            "zssd" | "z-ssd" => Ok(DeviceProfile::Z_SSD),
            "optane" | "optane-ssd" => Ok(DeviceProfile::OPTANE_SSD),
            "pmm" | "optane-pmm" => Ok(DeviceProfile::OPTANE_PMM),
            other => Err(ArgError(format!("unknown --device '{other}' (zssd|optane|pmm)"))),
        }
    }

    /// The `--kind` option for YCSB (default C).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown workload letters.
    pub fn ycsb_kind(&self) -> Result<YcsbKind, ArgError> {
        match self.get("kind").unwrap_or("c") {
            "a" | "A" => Ok(YcsbKind::A),
            "b" | "B" => Ok(YcsbKind::B),
            "c" | "C" => Ok(YcsbKind::C),
            "d" | "D" => Ok(YcsbKind::D),
            "e" | "E" => Ok(YcsbKind::E),
            "f" | "F" => Ok(YcsbKind::F),
            other => Err(ArgError(format!("unknown --kind '{other}' (a..f)"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse("fio --threads 4 --seq --mode osdp").unwrap();
        assert_eq!(a.command, "fio");
        assert_eq!(a.num("threads", 1).unwrap(), 4);
        assert!(a.flag("seq"));
        assert_eq!(a.mode().unwrap(), Mode::Osdp);
    }

    #[test]
    fn defaults_apply() {
        let a = parse("fio").unwrap();
        assert_eq!(a.num("threads", 1).unwrap(), 1);
        assert_eq!(a.mode().unwrap(), Mode::Hwdp);
        assert_eq!(a.device().unwrap().name, "Z-SSD SZ985");
        assert!(!a.flag("seq"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse("").is_err());
        assert!(parse("fio positional").is_err());
        assert!(parse("fio --threads four").unwrap().num("threads", 1).is_err());
        assert!(parse("fio --mode turbo").unwrap().mode().is_err());
        assert!(parse("fio --device floppy").unwrap().device().is_err());
        assert!(parse("ycsb --kind z").unwrap().ycsb_kind().is_err());
    }

    #[test]
    fn list_and_float_options() {
        let a = parse("sweep --modes osdp,hwdp --ratios 2,4.5").unwrap();
        assert_eq!(a.list("modes", "hwdp"), vec!["osdp", "hwdp"]);
        assert_eq!(a.list("scenarios", "fio"), vec!["fio"]);
        assert_eq!(a.float("threshold", 5.0).unwrap(), 5.0);
        let b = parse("compare --threshold 2.5").unwrap();
        assert_eq!(b.float("threshold", 5.0).unwrap(), 2.5);
        assert!(parse("compare --threshold abc").unwrap().float("threshold", 5.0).is_err());
    }

    #[test]
    fn ycsb_kinds_parse() {
        for (s, k) in [("a", YcsbKind::A), ("C", YcsbKind::C), ("f", YcsbKind::F)] {
            let a = Args::parse(["ycsb".into(), "--kind".into(), s.into()]).unwrap();
            assert_eq!(a.ycsb_kind().unwrap(), k);
        }
    }
}
